"""Micro-benchmark: compiled mesh engine vs the per-MZI Python walk.

Measures per-mesh apply throughput of the three propagation strategies --
the historical per-MZI reference walk, the vectorized column program and the
cached dense transfer matrix -- on Haar-random unitaries, and records the
results (including the speedup over the reference walk) to
``benchmarks/results/mesh_engine.json``.

The acceptance bar of the engine refactor is a >= 10x wall-clock win over the
seed per-MZI loop at dimension >= 64; the assertions below pin that.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import pytest

from repro.experiments.reporting import save_json
from repro.photonics import clements_decompose, random_unitary, reck_decompose
from repro.photonics import engine
from repro.photonics.engine import reference_apply


@dataclass
class MeshEngineBenchRow:
    dimension: int
    method: str
    batch: int
    optical_depth: int
    reference_seconds: float
    column_seconds: float
    dense_seconds: float
    column_speedup: float
    dense_speedup: float
    dense_applies_per_second: float


_rows: list = []


@pytest.mark.parametrize("dimension,method", [(16, "clements"), (64, "clements"), (64, "reck")])
def test_mesh_engine_speedup(benchmark, best_of, dimension, method, results_dir):
    rng = np.random.default_rng(0)
    decompose = clements_decompose if method == "clements" else reck_decompose
    mesh = decompose(random_unitary(dimension, rng))
    batch = 64
    states = rng.normal(size=(batch, dimension)) + 1j * rng.normal(size=(batch, dimension))
    program = mesh.compiled()

    reference_seconds = best_of(
        lambda: reference_apply(mesh.modes, mesh.thetas, mesh.phis,
                                mesh.output_phases, states), repeats=3)
    column_seconds = best_of(
        lambda: engine.propagate(program, states, mesh.thetas, mesh.phis,
                                 mesh.output_phases))
    mesh.apply(states)  # warm the dense transfer-matrix cache
    dense_seconds = best_of(lambda: mesh.apply(states))

    outputs = benchmark(mesh.apply, states)
    expected = reference_apply(mesh.modes, mesh.thetas, mesh.phis,
                               mesh.output_phases, states)
    assert np.abs(outputs - expected).max() < 1e-10

    column_speedup = reference_seconds / column_seconds
    dense_speedup = reference_seconds / dense_seconds
    if dimension >= 64:
        # the acceptance bar: mesh.apply (the consumer-facing path, dense at
        # this dimension) beats the seed per-MZI loop by >= 10x -- measured
        # ~900x, so the assertion has a wide margin on shared CI runners.
        assert dense_speedup >= 10.0
        # the column program measures ~12x (clements) / ~10x (reck, whose
        # triangular columns pack only half full); pin a regression floor
        # below the noise band of shared runners rather than the raw 10x
        assert column_speedup >= 5.0

    _rows.append(MeshEngineBenchRow(
        dimension=dimension, method=method, batch=batch,
        optical_depth=program.depth,
        reference_seconds=reference_seconds, column_seconds=column_seconds,
        dense_seconds=dense_seconds, column_speedup=column_speedup,
        dense_speedup=dense_speedup,
        dense_applies_per_second=1.0 / dense_seconds,
    ))
    save_json(_rows, results_dir / "mesh_engine.json")


def test_trials_ensemble_throughput(benchmark, best_of, results_dir):
    """A 32-realization noise ensemble propagates in one vectorized pass."""
    from repro.photonics import PhaseNoiseModel

    rng = np.random.default_rng(0)
    dimension, trials, batch = 32, 32, 16
    mesh = clements_decompose(random_unitary(dimension, rng))
    batched = PhaseNoiseModel(sigma=0.05, rng=rng).perturb(mesh, trials=trials)
    states = rng.normal(size=(batch, dimension)) + 1j * rng.normal(size=(batch, dimension))

    ensemble = benchmark(batched.apply, states)

    assert ensemble.shape == (trials, batch, dimension)
    batched_seconds = best_of(lambda: batched.apply(states))

    def sequential():
        for t in range(trials):
            single = mesh.with_phases(thetas=batched.thetas[t], phis=batched.phis[t],
                                      output_phases=batched.output_phases[t])
            reference_apply(single.modes, single.thetas, single.phis,
                            single.output_phases, states)

    sequential_seconds = best_of(sequential, repeats=2)
    assert sequential_seconds / batched_seconds >= 10.0
