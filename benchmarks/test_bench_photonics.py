"""Micro-benchmarks of the photonic substrate (Eq. 1 / Fig. 1 / Fig. 3 machinery).

These measure the cost of the operations the experiment harnesses rely on --
mesh decomposition, SVD weight mapping, optical propagation and full model
deployment -- and assert their correctness invariants (unitarity, closed-form
MZI counts, deployment fidelity).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.assignment import get_scheme
from repro.core.deploy import deploy_linear_model
from repro.core.training import prepare_batch
from repro.models import ComplexFCNN
from repro.photonics import (
    clements_decompose,
    mzi_count_matrix,
    mzi_count_unitary,
    random_unitary,
    reck_decompose,
    svd_decompose,
)
from repro.tensor import no_grad


@pytest.mark.parametrize("dimension", [16, 32, 48])
@pytest.mark.parametrize("method", ["reck", "clements"])
def test_mesh_decomposition(benchmark, dimension, method):
    """Decompose a Haar-random unitary into a physical MZI mesh."""
    rng = np.random.default_rng(0)
    unitary = random_unitary(dimension, rng)
    decompose = reck_decompose if method == "reck" else clements_decompose

    mesh = benchmark(decompose, unitary)

    assert mesh.mzi_count == mzi_count_unitary(dimension)
    assert np.abs(mesh.reconstruct() - unitary).max() < 1e-8


@pytest.mark.parametrize("shape", [(32, 64), (64, 64)])
def test_svd_weight_mapping(benchmark, shape):
    """Map a random weight matrix onto two meshes plus attenuators."""
    rng = np.random.default_rng(0)
    weight = rng.normal(size=shape)

    photonic = benchmark(svd_decompose, weight)

    assert photonic.device_count == mzi_count_matrix(*shape)
    assert np.abs(photonic.matrix() - weight).max() < 1e-8


def test_optical_batch_propagation(benchmark):
    """Propagate a batch of complex amplitudes through a 64-mode mesh."""
    rng = np.random.default_rng(0)
    mesh = clements_decompose(random_unitary(64, rng))
    batch = rng.normal(size=(128, 64)) + 1j * rng.normal(size=(128, 64))

    outputs = benchmark(mesh.apply, batch)

    assert np.allclose(np.sum(np.abs(outputs) ** 2, axis=1),
                       np.sum(np.abs(batch) ** 2, axis=1))


def test_fcnn_deployment_fidelity(benchmark):
    """Deploy a split FCNN onto meshes and check software/hardware agreement."""
    rng = np.random.default_rng(0)
    scheme = get_scheme("SI")
    model = ComplexFCNN(98, (50,), 10, decoder="merge", rng=rng)
    images = rng.normal(size=(16, 1, 14, 14))

    deployed = benchmark(deploy_linear_model, model)

    with no_grad():
        expected = model(prepare_batch(images, scheme)).data
    assert np.allclose(deployed.predict_logits(images, scheme), expected, atol=1e-6)
