"""Benchmark: reproduce Table II (accuracy + #MZI, OplixNet vs original ONN).

Each benchmark trains the original ONN (CVNN), the RVNN reference and the
proposed SCVNN (with mutual learning) for one workload at the CPU-scale preset
and reports the paper's row: accuracies plus the full-size MZI counts and the
~75% reduction.
"""

from __future__ import annotations

import pytest

from repro.experiments.common import get_workload
from repro.experiments.presets import get_preset
from repro.experiments.reporting import save_json
from repro.experiments.table2 import Table2Row, format_table2, run_workload

WORKLOAD_KEYS = ("fcnn", "lenet5", "resnet20", "resnet32")

_rows: list = []


@pytest.mark.parametrize("workload_key", WORKLOAD_KEYS)
def test_table2_row(run_once, workload_key, preset_name, results_dir):
    workload = get_workload(workload_key)
    preset = get_preset(preset_name)

    row: Table2Row = run_once(run_workload, workload, preset)

    assert 0.0 <= row.proposed_accuracy <= 1.0
    assert row.mzi_reduction == pytest.approx(0.75, abs=0.02)
    assert row.proposed_mzis < row.original_mzis

    _rows.append(row)
    save_json(_rows, results_dir / "table2.json")
    print()
    print(format_table2(_rows))
