"""Micro-benchmark: vectorized mesh decomposition vs the scalar nulling loops.

Measures per-unitary decomposition throughput of the wavefront-vectorized
Reck and the array-level Clements paths against the seed scalar references
(full embedded matrix products per nulled element), and records the results
to ``benchmarks/results/decompose.json``.  Deployment itself -- not just
propagation -- is now the quantity being accelerated: deploying a stack of
conv im2col matrices decomposes many same-size unitaries back to back.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import pytest

from repro.experiments.reporting import save_json
from repro.photonics import (
    clements_decompose,
    clements_decompose_reference,
    random_unitary,
    reck_decompose,
    reck_decompose_reference,
)


@dataclass
class DecomposeBenchRow:
    dimension: int
    method: str
    reference_seconds: float
    vectorized_seconds: float
    speedup: float
    max_phase_deviation: float


_rows: list = []


@pytest.mark.parametrize("dimension,method", [(32, "reck"), (64, "reck"),
                                              (32, "clements"), (64, "clements")])
def test_decompose_speedup(benchmark, best_of, dimension, method, results_dir):
    rng = np.random.default_rng(0)
    unitary = random_unitary(dimension, rng)
    fast = reck_decompose if method == "reck" else clements_decompose
    reference = (reck_decompose_reference if method == "reck"
                 else clements_decompose_reference)

    fast(unitary)  # warm the per-dimension schedule caches
    vectorized_seconds = best_of(lambda: fast(unitary), repeats=3)
    reference_seconds = best_of(lambda: reference(unitary), repeats=2)

    mesh = benchmark(fast, unitary)
    spec = reference(unitary)
    deviation = float(max(np.abs(mesh.thetas - spec.thetas).max(),
                          np.abs(mesh.phis - spec.phis).max(),
                          np.abs(mesh.output_phases - spec.output_phases).max()))
    assert np.array_equal(mesh.modes, spec.modes)
    assert deviation < 1e-10

    speedup = reference_seconds / vectorized_seconds
    if dimension >= 64:
        # measured ~18x (reck) / ~9x (clements) at dimension 64; pin a
        # regression floor below the noise band of shared CI runners
        assert speedup >= 3.0

    _rows.append(DecomposeBenchRow(
        dimension=dimension, method=method,
        reference_seconds=reference_seconds,
        vectorized_seconds=vectorized_seconds,
        speedup=speedup, max_phase_deviation=deviation,
    ))
    save_json(_rows, results_dir / "decompose.json")
