"""Benchmark: reproduce Figure 7 (OplixNet vs the OFFT architecture [19]).

For each of the four FCNN configurations the benchmark trains the original
ONN, the OFFT block-circulant network and the OplixNet split network, and
reports accuracy plus the #Para / #DC / #PS ratios normalised to the original
ONN (evaluated at the paper's full model sizes).
"""

from __future__ import annotations

import pytest

from repro.experiments.fig7 import FIG7_MODELS, format_fig7, run_model
from repro.experiments.presets import get_preset
from repro.experiments.reporting import save_json

_rows: list = []


@pytest.mark.parametrize("model_key", [config.key for config in FIG7_MODELS])
def test_fig7_model(run_once, model_key, preset_name, results_dir):
    config = next(c for c in FIG7_MODELS if c.key == model_key)
    preset = get_preset(preset_name)

    rows = run_once(run_model, config, preset)

    by_architecture = {row.architecture: row for row in rows}
    # the paper's headline shape: OplixNet uses fewer DCs and PSs than OFFT,
    # and both use fewer than the original ONN
    assert by_architecture["oplixnet"].normalized_dc < by_architecture["offt"].normalized_dc < 1.0
    assert by_architecture["oplixnet"].normalized_ps < by_architecture["offt"].normalized_ps < 1.0

    _rows.extend(rows)
    save_json(_rows, results_dir / "fig7.json")
    print()
    print(format_fig7(_rows))
