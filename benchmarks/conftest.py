"""Shared configuration of the benchmark harness.

Every benchmark regenerates one table or figure of the paper at a CPU-scale
preset and saves the rows it produced under ``benchmarks/results/`` so that
EXPERIMENTS.md can reference concrete numbers.

The preset is selected with the ``REPRO_BENCH_PRESET`` environment variable
("bench" by default, "smoke" for a fast sanity pass, "paper" for the full
configuration -- not practical on CPU).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


def bench_preset_name() -> str:
    """Preset used by every benchmark in this session."""
    return os.environ.get("REPRO_BENCH_PRESET", "bench")


@pytest.fixture(scope="session")
def preset_name() -> str:
    return bench_preset_name()


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def run_once(benchmark):
    """Run a harness function exactly once under pytest-benchmark timing.

    The experiment harnesses train neural networks, so repeating them for
    statistical timing would multiply the suite's runtime without adding
    information; one round per benchmark keeps the harness usable while still
    reporting wall-clock time per table/figure.
    """

    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return _run


@pytest.fixture
def best_of():
    """Best-of-N wall-clock timer shared by the micro-benchmarks.

    Minimum over repeats filters scheduler noise on shared runners; the
    micro-benchmarks compare two such minima to assert a speedup floor.
    """

    def _best_of(fn, repeats: int = 5) -> float:
        import time

        times = []
        for _ in range(repeats):
            start = time.perf_counter()
            fn()
            times.append(time.perf_counter() - start)
        return min(times)

    return _best_of
