"""Benchmark: reproduce Figure 9 (comparison of the output decoders).

One benchmark per workload; each trains the SCVNN with the merge, linear,
unitary and coherent decoder heads and reports accuracy plus the model area
normalised to the coherent configuration (the paper's normalisation).
"""

from __future__ import annotations

import pytest

from repro.experiments.fig9 import FIG9_DECODERS, format_fig9, run_fig9
from repro.experiments.presets import get_preset
from repro.experiments.reporting import save_json

WORKLOAD_KEYS = ("fcnn", "lenet5", "resnet20", "resnet32")

_rows: list = []


@pytest.mark.parametrize("workload_key", WORKLOAD_KEYS)
def test_fig9_workload(run_once, workload_key, preset_name, results_dir):
    preset = get_preset(preset_name)

    rows = run_once(run_fig9, preset, [workload_key])

    by_decoder = {row.decoder: row for row in rows}
    assert set(by_decoder) == set(FIG9_DECODERS)
    # area ordering of the paper: coherent (100%) < merge < unitary < linear
    assert by_decoder["coherent"].normalized_area == pytest.approx(1.0)
    assert (by_decoder["coherent"].normalized_area
            < by_decoder["merge"].normalized_area
            < by_decoder["unitary"].normalized_area
            < by_decoder["linear"].normalized_area)
    # the merge decoder costs only a small fraction of the model area over the
    # coherent baseline (a fraction of a percent for the 10-class models; the
    # 100-class ResNet-32 head is relatively larger but still < 3%)
    assert by_decoder["merge"].normalized_area - 1.0 < 0.03
    assert by_decoder["coherent"].extra_readout

    _rows.extend(rows)
    save_json(_rows, results_dir / "fig9.json")
    print()
    print(format_fig9(_rows))
