"""Benchmark: reproduce Figure 8 (comparison of data-assignment schemes).

One benchmark per workload; each trains the SCVNN with every assignment scheme
the paper compares on that workload (SI/SH/SS for the FCNN, SI/CL/CR for the
CNNs) and reports accuracy plus the area-reduction ratio at paper scale.
"""

from __future__ import annotations

import pytest

from repro.experiments.fig8 import FIG8_SCHEMES, format_fig8, run_fig8
from repro.experiments.presets import get_preset
from repro.experiments.reporting import save_json

WORKLOAD_KEYS = ("fcnn", "lenet5", "resnet20", "resnet32")

_rows: list = []


@pytest.mark.parametrize("workload_key", WORKLOAD_KEYS)
def test_fig8_workload(run_once, workload_key, preset_name, results_dir):
    preset = get_preset(preset_name)

    rows = run_once(run_fig8, preset, [workload_key])

    schemes = {row.scheme for row in rows}
    assert schemes == set(FIG8_SCHEMES[workload_key])
    if workload_key == "fcnn":
        # every spatial scheme reaches the same ~75% reduction on the FCNN
        assert all(row.area_reduction == pytest.approx(0.75, abs=0.01) for row in rows)
    else:
        by_scheme = {row.scheme: row for row in rows}
        # channel remapping shrinks the network the most, spatial the least
        assert by_scheme["CR"].area_reduction > by_scheme["CL"].area_reduction
        assert by_scheme["CL"].area_reduction == pytest.approx(0.75, abs=0.02)

    _rows.extend(rows)
    save_json(_rows, results_dir / "fig8.json")
    print()
    print(format_fig8(_rows))
