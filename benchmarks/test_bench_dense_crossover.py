"""Crossover benchmark: cached dense transfer matmul vs the chain backends.

Measures, per mesh dimension, the warm-cache dense apply against every
non-dense execution backend -- the compiled numpy column program and, when
built, the native ``cchain`` kernel -- and records the per-backend timing
axis plus the adaptively chosen ``DENSE_DIMENSION_LIMIT`` to
``benchmarks/results/dense_crossover.json``.  The measured data is what
:func:`repro.photonics.engine.calibrate_dense_limit` picks the limit from on
any machine: the limit is where dense stops beating the *fastest available*
alternative, so a machine with the kernel calibrates a lower crossover.
"""

from __future__ import annotations

from repro.experiments.reporting import save_json
from repro.photonics import _native, engine

#: dimensions the crossover is sampled at (kept small enough for CI)
DIMENSIONS = (16, 32, 48, 64, 96, 128)


def test_dense_crossover(benchmark, results_dir):
    limit, rows = benchmark.pedantic(
        engine.calibrate_dense_limit,
        kwargs={"dimensions": DIMENSIONS, "batch": 32, "repeats": 3},
        rounds=1, iterations=1)

    save_json({
        "chosen_limit": limit,
        "default_limit": engine.DENSE_DIMENSION_LIMIT,
        "native_kernel": _native.kernel() is not None,
        "rows": rows,
    }, results_dir / "dense_crossover.json")

    # the dense matmul must beat every chain backend at small dimensions on
    # any machine; the exact crossover is machine-dependent
    assert limit >= 16
    small = next(row for row in rows if row["dimension"] == 16)
    assert small["dense_speedup"] > 1.0
    assert small["dense_speedup_vs_best"] > 1.0

    # every row carries the full backend axis; cchain timings are real
    # numbers exactly when the kernel is loaded
    for row in rows:
        assert set(row["backend_seconds"]) == {"dense", "column", "cchain"}
        assert (row["backend_seconds"]["cchain"] is not None) \
            == (_native.kernel() is not None)

    # applying the measured limit must round-trip through the module global
    previous = engine.set_dense_dimension_limit(limit)
    try:
        assert engine.DENSE_DIMENSION_LIMIT == limit
    finally:
        engine.set_dense_dimension_limit(previous)
