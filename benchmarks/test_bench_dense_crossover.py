"""Crossover benchmark: cached dense transfer matmul vs the column program.

Measures, per mesh dimension, the warm-cache dense apply against the compiled
column program and records the raw timings plus the adaptively chosen
``DENSE_DIMENSION_LIMIT`` to ``benchmarks/results/dense_crossover.json``.
The measured data is what :func:`repro.photonics.engine.calibrate_dense_limit`
picks the limit from on any machine.
"""

from __future__ import annotations

from repro.experiments.reporting import save_json
from repro.photonics import engine

#: dimensions the crossover is sampled at (kept small enough for CI)
DIMENSIONS = (16, 32, 48, 64, 96, 128)


def test_dense_crossover(benchmark, results_dir):
    limit, rows = benchmark.pedantic(
        engine.calibrate_dense_limit,
        kwargs={"dimensions": DIMENSIONS, "batch": 32, "repeats": 3},
        rounds=1, iterations=1)

    save_json({
        "chosen_limit": limit,
        "default_limit": engine.DENSE_DIMENSION_LIMIT,
        "rows": rows,
    }, results_dir / "dense_crossover.json")

    # the dense matmul must beat the Python-level column loop at small
    # dimensions on any machine; the exact crossover is machine-dependent
    assert limit >= 16
    small = next(row for row in rows if row["dimension"] == 16)
    assert small["dense_speedup"] > 1.0

    # applying the measured limit must round-trip through the module global
    previous = engine.set_dense_dimension_limit(limit)
    try:
        assert engine.DENSE_DIMENSION_LIMIT == limit
    finally:
        engine.set_dense_dimension_limit(previous)
