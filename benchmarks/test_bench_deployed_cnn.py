"""Benchmark of the deployed-CNN harness: im2col lowering onto MZI meshes.

Trains the SCVNN LeNet-5 student at the session preset, lowers it onto
simulated meshes through the lowering pipeline and records fidelity plus the
batched phase-noise sweep to ``benchmarks/results/deployed_cnn.json``.
"""

from __future__ import annotations

from repro.experiments.deployed import format_deployed_cnn, run_deployed_cnn
from repro.experiments.reporting import save_json


def test_deployed_cnn(run_once, preset_name, results_dir):
    rows = run_once(run_deployed_cnn, preset=preset_name,
                    sigmas=(0.0, 0.01, 0.03), trials=8, eval_samples=48)

    assert len(rows) == 3
    # acceptance bar of the lowering pipeline: the noiseless deployed CNN
    # matches the software forward to <= 1e-8 on real test batches
    assert rows[0].max_logit_error <= 1e-8
    assert rows[0].deployed_accuracy == rows[0].software_accuracy
    assert all(0.0 <= row.noisy_accuracy <= 1.0 for row in rows)

    save_json(rows, results_dir / "deployed_cnn.json")
    print()
    print(format_deployed_cnn(rows))
