"""Micro-benchmarks of the plan runtime and the dynamic-batching server.

Two quantities are measured and recorded to ``benchmarks/results/runtime.json``:

* **Plan vs node-walk** -- executing a compiled program through its
  :class:`~repro.core.runtime.ExecutionPlan` (fused dense stages, slot-reuse
  buffers) against the kept interpreted node-walk
  (:meth:`~repro.core.graph_ir.GraphProgram.forward_reference`), at serving
  batch sizes 1 / 8 / 64, with parity asserted to 1e-12.  Fully connected
  programs collapse to one matmul per layer (measured ~2.5-4x); im2col
  convolution programs are patch-extraction-bound, so their win is smaller
  and the assertion is a no-regression floor.
* **Dynamic-batcher throughput** -- synthetic concurrent single-image traffic
  through :class:`~repro.serve.DynamicBatcher` at flush budgets
  {1, 8, 64}, against the same requests issued sequentially.  Batching
  coalesces the per-request fixed costs, so throughput grows with the flush
  budget (measured ~5x at 8, ~10x at 64 on the dev box).
"""

from __future__ import annotations

import os
from dataclasses import asdict, dataclass

import numpy as np
import pytest

import repro
from repro.assignment import get_scheme
from repro.experiments.reporting import save_json
from repro.models import ComplexFCNN
from repro.models.lenet import ComplexLeNet5
from repro.models.resnet import ComplexResNet
from repro.nn.normalization import _BatchNorm
from repro.serve import measure_plan_speedup, run_serving_benchmark

PARITY = 1e-12
SERVING_BATCHES = (1, 8, 64)


def bench_preset_name() -> str:
    return os.environ.get("REPRO_BENCH_PRESET", "bench")


@dataclass
class PlanBenchRow:
    model: str
    batch: int
    walk_seconds: float
    plan_seconds: float
    speedup: float
    max_deviation: float
    instructions: int
    buffer_slots: int
    fused_matmuls: int
    fused_affine_chains: int


_results: dict = {"plan_vs_walk": [], "serving_throughput": []}


def _save(results_dir) -> None:
    save_json(_results, results_dir / "runtime.json")


def _randomize_batchnorms(model, rng) -> None:
    for _name, module in model.named_modules():
        if isinstance(module, _BatchNorm):
            module._set_buffer("running_mean", rng.normal(size=module.num_features) * 0.3)
            module._set_buffer("running_var", rng.uniform(0.5, 2.0, size=module.num_features))


def _model_under_test(key: str, smoke: bool, rng):
    """An untrained model (weights are irrelevant to runtime cost) + images."""
    if key == "fcnn":
        widths = (32, 32) if smoke else (48, 48)
        model = ComplexFCNN(64, widths, 10, decoder="merge", rng=rng)
        return model, get_scheme("SI"), (1, 8, 16)
    if key == "lenet5":
        image = 12 if smoke else 16
        channels = (3, 4) if smoke else (4, 8)
        model = ComplexLeNet5(in_channels=2, num_classes=10,
                              image_size=(image, image), channels=channels,
                              hidden_sizes=(32, 16), decoder="merge",
                              kernel_size=3, padding=1, rng=rng)
        return model, get_scheme("CL"), (3, image, image)
    if key == "resnet":
        widths = (2, 4, 8) if smoke else (4, 8, 16)
        image = 8 if smoke else 12
        model = ComplexResNet(depth=8, in_channels=2, num_classes=10,
                              base_widths=widths, rng=rng)
        _randomize_batchnorms(model, rng)
        return model, get_scheme("CL"), (3, image, image)
    raise KeyError(key)


@pytest.mark.parametrize("model_key", ["fcnn", "lenet5", "resnet"])
def test_plan_vs_walk_speedup(model_key, results_dir):
    smoke = bench_preset_name() == "smoke"
    rng = np.random.default_rng(0)
    model, scheme, image_shape = _model_under_test(model_key, smoke, rng)
    program = repro.compile(model)
    program.plan()                                   # pay plan compilation once
    for batch in (1, 8, 64):
        images = rng.normal(size=(batch,) + image_shape)
        row = measure_plan_speedup(program, images, scheme,
                                   repeats=3 if smoke else 5)
        assert row["max_deviation"] <= PARITY
        _results["plan_vs_walk"].append(PlanBenchRow(model=model_key, **row))
    rows = [row for row in _results["plan_vs_walk"] if row.model == model_key]
    # fully connected programs fold whole stages into single matmuls; the
    # conv programs are im2col-bound, so they only get a no-regression floor
    # (floors sit far below the measured values to ride out CI runner noise)
    best = max(row.speedup for row in rows)
    assert best >= (1.3 if model_key == "fcnn" else 0.75)
    _save(results_dir)


def test_dynamic_batcher_throughput(results_dir):
    smoke = bench_preset_name() == "smoke"
    rng = np.random.default_rng(1)
    model, scheme, image_shape = _model_under_test("lenet5", smoke, rng)
    program = repro.compile(model)
    requests = 64 if smoke else 128
    rows = []
    for max_batch in SERVING_BATCHES:
        row = run_serving_benchmark(program, scheme, image_shape=image_shape,
                                    requests=requests, clients=8,
                                    max_batch=max_batch, max_latency_s=0.002)
        rows.append(row)
        _results["serving_throughput"].append(asdict(row))
    _save(results_dir)
    by_budget = {row.max_batch: row for row in rows}
    # a flush budget of 64 coalesces the whole request wave into a couple of
    # forwards; measured ~10x over sequential on the dev box, floor well below
    assert by_budget[64].throughput_gain >= 1.5
    # larger budgets must not serve (much) worse than single-sample flushes
    assert (by_budget[64].batched_requests_per_s
            >= 0.8 * by_budget[1].batched_requests_per_s)
