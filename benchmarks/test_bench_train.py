"""Micro-benchmarks of the training hot path.

Records per-training-step latency (forward + backward + optimizer step) of
the complex model families at several batch sizes, fused fast-path kernels
versus the pre-optimization reference path
(:func:`repro.tensor.functional.use_reference_kernels`: 4-real-op complex
layers, index-table im2col, ``np.add.at`` col2im), plus the isolated cost of
the in-place versus allocating optimizer steps -- all saved to
``benchmarks/results/train.json``.

Two regression floors are pinned: the LeNet-style complex CNN training step
must stay at least 3x faster than the reference path at batch 64 (the
ISSUE-5 acceptance bar; measured ~5x on the dev box), and the fused path
must never lose to the reference anywhere else.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np
import pytest

from repro.experiments.reporting import save_json
from repro.models.fcnn import ComplexFCNN
from repro.models.lenet import ComplexLeNet5
from repro.models.resnet import ComplexResNet
from repro.nn.complex import ComplexTensor
from repro.nn.losses import cross_entropy
from repro.optim import SGD, Adam
from repro.tensor import functional as F
from repro.tensor.tensor import Tensor


def bench_preset_name() -> str:
    return os.environ.get("REPRO_BENCH_PRESET", "bench")


@dataclass
class TrainStepRow:
    model: str
    batch: int
    fused_seconds: float
    reference_seconds: float
    speedup: float
    fused_steps_per_second: float


@dataclass
class OptimizerRow:
    optimizer: str
    parameter_count: int
    in_place_seconds: float
    allocating_seconds: float
    speedup: float


_results: dict = {"train_step": [], "optimizer_step": []}


def _save(results_dir) -> None:
    save_json(_results, results_dir / "train.json")


def _batch_sizes():
    if bench_preset_name() == "smoke":
        return (8, 32)
    return (16, 64, 256)


def _models():
    smoke = bench_preset_name() == "smoke"
    rng = np.random.default_rng(0)
    image = 16 if smoke else 32
    lenet_kwargs = dict(kernel_size=3, padding=1) if smoke else {}
    return {
        "fcnn": (ComplexFCNN(392, [50], 10, rng=rng),
                 lambda batch_rng, batch: ComplexTensor(
                     Tensor(batch_rng.normal(size=(batch, 392))),
                     Tensor(batch_rng.normal(size=(batch, 392))))),
        "lenet": (ComplexLeNet5(in_channels=2, image_size=(image, image),
                                rng=rng, **lenet_kwargs),
                  lambda batch_rng, batch: ComplexTensor(
                      Tensor(batch_rng.normal(size=(batch, 2, image, image))),
                      Tensor(batch_rng.normal(size=(batch, 2, image, image))))),
        "resnet": (ComplexResNet(depth=8, in_channels=2,
                                 base_widths=(2, 4, 8) if smoke else (4, 8, 16),
                                 rng=rng),
                   lambda batch_rng, batch: ComplexTensor(
                       Tensor(batch_rng.normal(size=(batch, 2, image, image))),
                       Tensor(batch_rng.normal(size=(batch, 2, image, image))))),
    }


@pytest.fixture(scope="module")
def models():
    return _models()


@pytest.mark.parametrize("model_name", ["fcnn", "lenet", "resnet"])
@pytest.mark.parametrize("batch", _batch_sizes())
def test_train_step_speedup(best_of, results_dir, models, model_name, batch):
    smoke = bench_preset_name() == "smoke"
    if model_name == "resnet" and batch > (32 if smoke else 64):
        pytest.skip("resnet reference path at large batch is too slow for CI")
    model, make_batch = models[model_name]
    rng = np.random.default_rng(1)
    inputs = make_batch(rng, batch)
    labels = rng.integers(0, model.num_classes, size=batch)
    optimizer = SGD(model.parameters(), lr=0.01, momentum=0.9)

    def step():
        optimizer.zero_grad()
        loss = cross_entropy(model(inputs), labels)
        loss.backward()
        optimizer.step()

    repeats = 3 if model_name == "resnet" else 5
    fused_seconds = best_of(step, repeats=repeats)
    with F.use_reference_kernels():
        reference_seconds = best_of(step, repeats=repeats)
    speedup = reference_seconds / fused_seconds

    # the fused path must not lose to the reference (0.8 floor leaves room
    # for shared-runner noise on the small fcnn steps); the LeNet CNN at
    # batch 64 carries the ISSUE-5 acceptance floor of 3x (measured ~5x)
    assert speedup >= 0.8
    if model_name == "lenet" and batch == 64 and not smoke:
        assert speedup >= 3.0

    _results["train_step"].append(TrainStepRow(
        model=model_name, batch=batch,
        fused_seconds=fused_seconds, reference_seconds=reference_seconds,
        speedup=speedup, fused_steps_per_second=1.0 / fused_seconds))
    _save(results_dir)


@pytest.mark.parametrize("optimizer_name", ["sgd", "sgd_nesterov", "adam"])
def test_optimizer_step_cost(best_of, results_dir, models, optimizer_name):
    model, _make_batch = models["lenet"]
    parameters = model.parameters()
    rng = np.random.default_rng(2)
    grads = [rng.normal(size=parameter.shape) for parameter in parameters]
    for parameter, grad in zip(parameters, grads):
        parameter.grad = grad

    if optimizer_name == "sgd":
        optimizer = SGD(parameters, lr=1e-4, momentum=0.9, weight_decay=1e-4)
    elif optimizer_name == "sgd_nesterov":
        optimizer = SGD(parameters, lr=1e-4, momentum=0.9, nesterov=True)
    else:
        optimizer = Adam(parameters, lr=1e-5)

    repeats = 20
    in_place_seconds = best_of(optimizer.step, repeats=repeats)
    allocating_seconds = best_of(optimizer.step_reference, repeats=repeats)

    _results["optimizer_step"].append(OptimizerRow(
        optimizer=optimizer_name,
        parameter_count=int(sum(parameter.size for parameter in parameters)),
        in_place_seconds=in_place_seconds,
        allocating_seconds=allocating_seconds,
        speedup=allocating_seconds / in_place_seconds))
    _save(results_dir)
