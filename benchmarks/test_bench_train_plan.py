"""Micro-benchmarks of the compiled training-step plan.

Records full :meth:`Trainer.train_step` latency (batch packing, forward,
backward, optimizer tail) of the complex model families at several batch
sizes, compiled plan versus the pre-compilation eager tape (the ISSUE-5
configuration: fused kernels but closure-driven backward and composed
batch norm), saved to ``benchmarks/results/train_plan.json``.

One regression floor is pinned: the complex ResNet at batch 64 must train
at least 1.5x faster under the plan than on the eager tape (the ISSUE-6
acceptance bar; measured ~1.6x on the dev box).  Everywhere else the plan
must not lose to eager beyond shared-runner noise.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np
import pytest

from repro.assignment import get_scheme
from repro.core.config import TrainingConfig
from repro.core.training import Trainer
from repro.experiments.reporting import save_json
from repro.models.fcnn import ComplexFCNN
from repro.models.lenet import ComplexLeNet5
from repro.models.resnet import ComplexResNet
from repro.nn.normalization import use_composed_batch_norm


def bench_preset_name() -> str:
    return os.environ.get("REPRO_BENCH_PRESET", "bench")


@dataclass
class PlanStepRow:
    model: str
    batch: int
    planned_seconds: float
    eager_seconds: float
    speedup: float
    planned_steps_per_second: float
    forward_instructions: int
    backward_instructions: int
    specialized_backward: int
    fused_activations: int


_results: dict = {"train_step": []}


def _save(results_dir) -> None:
    save_json(_results, results_dir / "train_plan.json")


def _batch_sizes():
    if bench_preset_name() == "smoke":
        return (8, 32)
    return (16, 64, 256)


def _build(model_name):
    """A freshly initialised model plus the numpy image batch shape it eats."""
    smoke = bench_preset_name() == "smoke"
    rng = np.random.default_rng(0)
    image = 16 if smoke else 32
    if model_name == "fcnn":
        # SI assignment halves the height: (1, 28, 28) packs into 392 features
        return ComplexFCNN(392, [50], 10, rng=rng), (1, 28, 28)
    if model_name == "lenet":
        lenet_kwargs = dict(kernel_size=3, padding=1) if smoke else {}
        return (ComplexLeNet5(in_channels=2, image_size=(image, image),
                              rng=rng, **lenet_kwargs),
                (2, 2 * image, image))
    return (ComplexResNet(depth=8, in_channels=2,
                          base_widths=(2, 4, 8) if smoke else (4, 8, 16),
                          rng=rng),
            (2, 2 * image, image))


def _trainer(model_name, batch, compiled):
    model, image_shape = _build(model_name)
    config = TrainingConfig(epochs=1, batch_size=batch, learning_rate=0.01, seed=0)
    trainer = Trainer(model, config, scheme=get_scheme("SI"),
                      compile_train_step=compiled)
    trainer.model.train()
    rng = np.random.default_rng(1)
    images = rng.normal(size=(batch,) + image_shape)
    labels = rng.integers(0, model.num_classes, size=batch)
    return trainer, images, labels


@pytest.mark.parametrize("model_name", ["fcnn", "lenet", "resnet"])
@pytest.mark.parametrize("batch", _batch_sizes())
def test_planned_step_speedup(best_of, results_dir, model_name, batch):
    smoke = bench_preset_name() == "smoke"
    if model_name == "resnet" and batch > (32 if smoke else 64):
        pytest.skip("resnet eager path at large batch is too slow for CI")
    repeats = 3 if model_name == "resnet" else 5

    planned_trainer, images, labels = _trainer(model_name, batch, compiled=True)
    planned_trainer.train_step(images, labels)  # trace + compile once
    assert planned_trainer.plan_stats["compiled"] == 1, planned_trainer.plan_stats
    planned_seconds = best_of(
        lambda: planned_trainer.train_step(images, labels), repeats=repeats)

    eager_trainer, images, labels = _trainer(model_name, batch, compiled=False)
    with use_composed_batch_norm():
        eager_trainer.train_step(images, labels)  # warm caches symmetrically
        eager_seconds = best_of(
            lambda: eager_trainer.train_step(images, labels), repeats=repeats)
    speedup = eager_seconds / planned_seconds

    # the plan must not lose to the eager tape (0.8 floor absorbs runner
    # noise on the sub-millisecond fcnn steps); the complex ResNet at batch
    # 64 carries the ISSUE-6 acceptance floor of 1.5x (measured ~1.6x)
    assert speedup >= 0.8
    if model_name == "resnet" and batch == 64 and not smoke:
        assert speedup >= 1.5

    plan_stats = next(iter(planned_trainer.plan_stats["plans"].values()))
    _results["train_step"].append(PlanStepRow(
        model=model_name, batch=batch,
        planned_seconds=planned_seconds, eager_seconds=eager_seconds,
        speedup=speedup, planned_steps_per_second=1.0 / planned_seconds,
        forward_instructions=plan_stats["forward_instructions"],
        backward_instructions=plan_stats["backward_instructions"],
        specialized_backward=plan_stats["specialized_backward"],
        fused_activations=plan_stats["fused_activations"]))
    _save(results_dir)
