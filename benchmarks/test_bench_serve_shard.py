"""Benchmarks of the multi-process sharded inference service.

Records batched request throughput of :class:`ShardedInferenceService` at
worker counts {1, 2, 4} over identical synthetic traffic to
``benchmarks/results/serve_shard.json``.  Two properties are pinned:

* **Parity** -- every sharded request's logits are compared against the
  in-process :class:`PhotonicInferenceService` reference path serving the
  same model object (<= 1e-10, asserted unconditionally).
* **Scaling** -- request throughput at 2 workers must clear a conservative
  1.6x CI floor over 1 worker.  The floor assertion needs real parallelism,
  so it auto-skips (with the reason logged into the JSON) when fewer than
  two CPUs are available to this process; the throughput sweep itself still
  runs and records honest numbers.

A final hygiene check asserts no ``repro-shard-*`` shared-memory segment
created by this process survives service shutdown, so CI machines never
accumulate ``/dev/shm`` leaks across runs.
"""

from __future__ import annotations

import glob
import os
from dataclasses import asdict

import numpy as np
import pytest

from repro.experiments.reporting import save_json
from repro.models import ComplexFCNN
from repro.serve import run_shard_benchmark

PARITY = 1e-10
SCALING_FLOOR = 1.6          # CI floor at 2 workers vs 1 (measured ~1.9x)
WORKER_COUNTS = (1, 2, 4)
IMAGE_SHAPE = (1, 16, 16)    # SI assignment -> 128 complex features


def bench_preset_name() -> str:
    return os.environ.get("REPRO_BENCH_PRESET", "bench")


def effective_cpus() -> int:
    """CPUs actually available to this process (affinity-aware)."""
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1


def _bench_model(smoke: bool) -> ComplexFCNN:
    # wide enough that one 32-sample flush is a multi-millisecond,
    # compute-bound forward -- the regime process sharding targets
    widths = (96, 96) if smoke else (160, 160)
    return ComplexFCNN(128, widths, 10, decoder="merge",
                       rng=np.random.default_rng(0))


_results: dict = {}


def _leaked_segments() -> list:
    """repro-shard segments owned by this process still present in /dev/shm."""
    if not os.path.isdir("/dev/shm"):  # pragma: no cover -- non-Linux
        return []
    return glob.glob(f"/dev/shm/repro-shard-{os.getpid()}-*")


def test_shard_throughput_sweep(results_dir):
    smoke = bench_preset_name() == "smoke"
    cpus = effective_cpus()
    rows = run_shard_benchmark(
        _bench_model(smoke), "SI", IMAGE_SHAPE, worker_counts=WORKER_COUNTS,
        requests=48 if smoke else 96, clients=8, images_per_request=4,
        max_batch=32, max_latency_s=0.002, seed=0)
    for row in rows:
        assert row.max_parity <= PARITY, (row.workers, row.max_parity)
    floor_checked = cpus >= 2
    _results.update({
        "cpus": cpus,
        "preset": bench_preset_name(),
        "scaling_floor": SCALING_FLOOR,
        "scaling_floor_checked": floor_checked,
        "skip_reason": None if floor_checked else (
            f"only {cpus} CPU(s) available: worker processes time-slice one "
            f"core, so the {SCALING_FLOOR}x floor at 2 workers is not asserted"),
        "rows": [asdict(row) for row in rows],
    })
    save_json(_results, results_dir / "serve_shard.json")
    # shutdown hygiene: every slab ring the sweep created must be unlinked
    assert _leaked_segments() == []


def test_scaling_floor_at_two_workers(results_dir):
    cpus = effective_cpus()
    if cpus < 2:
        pytest.skip(f"sharded scaling floor needs >= 2 CPUs, found {cpus}; "
                    "the throughput sweep recorded serve_shard.json without "
                    "asserting the floor")
    rows = {row["workers"]: row for row in _results["rows"]}
    assert rows, "sweep must run first"
    assert rows[2]["gain_vs_single"] >= SCALING_FLOOR
    # four workers must not serve worse than two (allow scheduler noise)
    if cpus >= 4:
        assert rows[4]["requests_per_s"] >= 0.9 * rows[2]["requests_per_s"]
