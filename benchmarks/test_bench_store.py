"""Benchmarks of the ahead-of-time compilation artifact store.

Records cold (live decomposition) versus warm (content-addressed store hit)
program-build time for the three deployable model families to
``benchmarks/results/store.json``.  Two properties are pinned:

* **Parity** -- warm-loaded programs must land on the same logits as a live
  compile of the same weights to <= 1e-12 (the stored phases and dense
  matrices are the float64 arrays the live compile produced, so the warm
  path is bit-identical by construction; asserted for every model).
* **Speedup** -- on the largest model (the ResNet) the warm build must beat
  the live build by a floor that depends on how fast the live build is:
  10x against the pure-numpy decomposition chain, 3x when the native
  ``cchain`` kernel is loaded (the kernel cut live decomposition several-x,
  shrinking -- but not closing -- the warm-store advantage).  Warm builds
  replace SVD factoring and Reck/Clements mesh decomposition with a
  digest-checked manifest read plus ``np.load``, so the measured margin is
  above the active floor either way.

A final hygiene check asserts the store directory holds no orphaned
``*.tmp`` writer directories and no quarantined entries after the sweep --
the on-disk analogue of the serve-shard benchmark's /dev/shm leak check.
"""

from __future__ import annotations

import os
from dataclasses import asdict, dataclass

import numpy as np
import pytest

from repro.assignment import get_scheme
from repro.core.compile import compile as compile_model
from repro.experiments.reporting import save_json
from repro.models import ComplexFCNN, ComplexLeNet5, ComplexResNet
from repro.store import ArtifactStore

PARITY = 1e-12
MODELS = ("fcnn", "lenet5", "resnet")
LARGEST = "resnet"


def warm_speedup_floor() -> float:
    """CI floor on the largest model (measured far above either value).

    The live-build baseline depends on which decomposition chain runs: the
    native cchain kernel makes live compiles several-x faster, so the
    warm-store advantage is structurally smaller (though still real --
    a warm build does no decomposition at all).
    """
    from repro.photonics import _native

    return 3.0 if _native.kernel() is not None else 10.0


def bench_preset_name() -> str:
    return os.environ.get("REPRO_BENCH_PRESET", "bench")


def _build_model(name: str, smoke: bool):
    """One deployable model per family plus its image shape and scheme."""
    rng = np.random.default_rng(0)
    if name == "fcnn":
        widths = (96, 96) if smoke else (160, 160)
        return (ComplexFCNN(128, widths, 10, decoder="merge", rng=rng),
                (1, 16, 16), "SI")
    if name == "lenet5":
        image = 16 if smoke else 24
        return (ComplexLeNet5(in_channels=2, num_classes=10,
                              image_size=(image, image), channels=(3, 8),
                              hidden_sizes=(60, 42), decoder="merge", rng=rng),
                (3, image, image), "CL")
    # the smoke ResNet keeps the full base widths: with (2, 4, 8) meshes the
    # fixed lowering walk (im2col, BN folding) -- paid by warm builds too --
    # drowns the decomposition time the store removes, and the speedup floor
    # below would measure the walk, not the store
    depth, widths, image = (8, (4, 8, 16), 8) if smoke else (14, (4, 8, 16), 12)
    return (ComplexResNet(depth=depth, in_channels=2, num_classes=10,
                          base_widths=widths, decoder="merge", rng=rng),
            (3, image, image), "CL")


@dataclass
class StoreBenchRow:
    model: str
    matrices: int
    entry_bytes: int
    publish_seconds: float       # first cold compile including the save
    live_seconds: float          # compile + plan without a store
    warm_seconds: float          # compile + plan off the warm store
    warm_speedup: float
    max_parity: float
    store: dict


_results: dict = {"rows": []}


def _entry_bytes(store: ArtifactStore, key: str) -> int:
    return sum(path.stat().st_size
               for path in store.entry_path(key).rglob("*") if path.is_file())


def test_store_cold_vs_warm_build(best_of, results_dir, tmp_path):
    import time

    smoke = bench_preset_name() == "smoke"
    root = tmp_path / "store"
    for name in MODELS:
        model, image_shape, scheme_name = _build_model(name, smoke)
        scheme = get_scheme(scheme_name)
        images = np.random.default_rng(1).normal(size=(8, *image_shape))
        store = ArtifactStore(root)

        def live_build():
            program = compile_model(model)
            program.plan()
            return program

        def warm_build():
            program = compile_model(model, store=store)
            program.plan()
            return program

        start = time.perf_counter()
        cold = warm_build()                  # miss: decomposes and publishes
        publish_seconds = time.perf_counter() - start
        assert not cold.store_hit and store.has(cold.store_key)

        live = live_build()
        live_seconds = best_of(live_build, repeats=2)
        warm = warm_build()
        assert warm.store_hit
        warm_seconds = best_of(warm_build, repeats=3)

        expected = live.predict_logits(images, scheme)
        max_parity = float(np.abs(warm.predict_logits(images, scheme)
                                  - expected).max())
        assert max_parity <= PARITY, (name, max_parity)

        artifact = store.load(cold.store_key)
        assert artifact is not None
        _results["rows"].append(asdict(StoreBenchRow(
            model=name, matrices=len(artifact.matrices),
            entry_bytes=_entry_bytes(store, cold.store_key),
            publish_seconds=publish_seconds, live_seconds=live_seconds,
            warm_seconds=warm_seconds,
            warm_speedup=live_seconds / warm_seconds,
            max_parity=max_parity, store=store.stats.as_dict())))

    from repro.photonics import _native

    _results["preset"] = bench_preset_name()
    _results["parity_bound"] = PARITY
    _results["warm_speedup_floor"] = warm_speedup_floor()
    _results["native_kernel"] = _native.kernel() is not None
    save_json(_results, results_dir / "store.json")
    # publication hygiene: no torn/orphaned writer directories, nothing
    # quarantined -- every entry in the tree is addressable and valid
    assert not list(root.rglob("*.tmp"))
    assert not (root / ".quarantine").exists()


def test_warm_speedup_floor_on_largest_model():
    rows = {row["model"]: row for row in _results["rows"]}
    assert rows, "the cold-vs-warm sweep must run first"
    row = rows[LARGEST]
    assert row["warm_speedup"] >= warm_speedup_floor(), row
