#!/usr/bin/env python
"""Validate every hardware-degradation scenario against closed forms.

Each registered scenario makes a quantitative promise -- the OU walk's
variance curve and autocorrelation, the crosstalk sampler's covariance
matrix, the fabrication field's per-device determinism.  This script checks
the *implementations* against those *closed forms* with large-ensemble
statistics and exact identities, end to end through the public seams
(``perturb``, ``at_times``, ``CompiledProgram.with_scenario``).  CI runs it
on every push; exit status is non-zero when any check fails.

Usage::

    python tools/check_scenarios.py [--trials 200000] [--seed 1]
"""

from __future__ import annotations

import argparse
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

import numpy as np  # noqa: E402

from repro.photonics.mzi_mesh import decompose_unitary, random_unitary  # noqa: E402
from repro.scenarios import (  # noqa: E402
    CompositeScenario,
    CorrelatedCrosstalkScenario,
    FabricationOffsetScenario,
    ThermalDriftScenario,
    build_scenario,
    device_of,
    list_scenarios,
)

FAILURES = []


def check(name: str, condition: bool, detail: str = "") -> None:
    status = "PASS" if condition else "FAIL"
    print(f"  [{status}] {name}" + (f"  ({detail})" if detail else ""))
    if not condition:
        FAILURES.append(name)


def offsets_of(mesh, degraded) -> np.ndarray:
    """Flat (thetas, phis, output-angle) offset field between two meshes."""
    return np.concatenate([
        degraded.thetas - mesh.thetas,
        degraded.phis - mesh.phis,
        np.angle(degraded.output_phases / mesh.output_phases),
    ], axis=-1)


def check_thermal_drift(mesh, trials: int, seed: int) -> None:
    print("thermal_drift (Ornstein--Uhlenbeck walk)")
    sigma, tau = 0.1, 30.0
    scenario = ThermalDriftScenario(sigma=sigma, tau_s=tau, seed=seed)
    times = [5.0, 15.0, 60.0, 200.0]
    trajectory = scenario.at_times(mesh, times, trials=trials)
    offsets = offsets_of(mesh, trajectory)          # (T, trials, shifters)
    for index, t in enumerate(times):
        expected = float(scenario.expected_std(t))
        measured = float(offsets[index].std())
        check(f"variance curve at t={t:.0f}s",
              abs(measured - expected) < 0.01 * sigma + 3.0 * sigma / np.sqrt(trials),
              f"std {measured:.5f} vs sigma*sqrt(1-exp(-2t/tau)) = {expected:.5f}")
    stationary = float(offsets[-1].std())
    check("stationary variance -> sigma^2",
          abs(stationary - sigma) < 0.01 * sigma,
          f"std at t=200s {stationary:.5f} vs sigma {sigma}")
    late = offsets_of(mesh, scenario.at_times(mesh, [215.0], trials=trials))[0]
    r = float((offsets[-1] * late).mean() / (offsets[-1].std() * late.std()))
    expected_r = scenario.expected_autocorrelation(15.0)
    check("autocorrelation exp(-dt/tau)", abs(r - expected_r) < 0.02,
          f"corr over 15s {r:.4f} vs {expected_r:.4f}")
    replay = ThermalDriftScenario(sigma=sigma, tau_s=tau, seed=seed)
    again = offsets_of(mesh, replay.at_times(mesh, times, trials=trials))
    check("same seed + same grid -> same walk",
          bool(np.array_equal(offsets, again)))
    fixed = ThermalDriftScenario(sigma=sigma, tau_s=tau, seed=seed)
    fixed.advance(40.0)
    first = offsets_of(mesh, fixed.perturb(mesh))
    second = offsets_of(mesh, fixed.perturb(mesh))
    check("idempotent at a fixed clock", bool(np.array_equal(first, second)))


def check_crosstalk(mesh, trials: int, seed: int) -> None:
    print("crosstalk (neighbor-coupled Gaussian field)")
    sigma, coupling = 0.05, 0.4
    scenario = CorrelatedCrosstalkScenario(sigma=sigma, coupling=coupling,
                                           seed=seed)
    covariance = scenario.covariance(mesh)
    diag_err = float(np.abs(np.diag(covariance) - sigma ** 2).max())
    check("closed-form marginals are exactly sigma^2", diag_err < 1e-12,
          f"max |C_ii - sigma^2| = {diag_err:.2e}")
    device = device_of(mesh)
    degrees = scenario.degrees(device)
    check("every shifter has neighbors", bool(degrees.min() >= 1),
          f"degree range [{degrees.min()}, {degrees.max()}]")
    samples = offsets_of(mesh, scenario.perturb(mesh, trials=trials))
    empirical = samples.T @ samples / trials
    err = float(np.abs(empirical - covariance).max())
    # sampling error of a covariance entry is O(sigma^2 / sqrt(trials))
    bound = 8.0 * sigma ** 2 / np.sqrt(trials)
    check("sampled covariance matches S(I+kA)(I+kA)^T S", err < bound,
          f"max entry error {err:.2e} < {bound:.2e}")
    neighbors = covariance[np.triu_indices_from(covariance, k=1)]
    check("coupling induces off-diagonal correlation",
          float(np.abs(neighbors).max()) > 0.1 * sigma ** 2)
    uncoupled = CorrelatedCrosstalkScenario(sigma=sigma, coupling=0.0,
                                            seed=seed).covariance(mesh)
    off = float(np.abs(uncoupled - np.diag(np.diag(uncoupled))).max())
    check("coupling=0 recovers i.i.d. noise", off == 0.0)


def check_fabrication(mesh, other_mesh, seed: int) -> None:
    print("fabrication (frozen per-device offsets)")
    scenario = FabricationOffsetScenario(sigma=0.02, seed=seed)
    first = offsets_of(mesh, scenario.perturb(mesh))
    second = offsets_of(mesh, scenario.perturb(mesh))
    check("idempotent across evaluations", bool(np.array_equal(first, second)))
    rebuilt = FabricationOffsetScenario(sigma=0.02, seed=seed)
    check("pure function of (seed, device)",
          bool(np.array_equal(first, offsets_of(mesh, rebuilt.perturb(mesh)))))
    scenario.advance(1000.0)
    check("time-independent",
          bool(np.array_equal(first, offsets_of(mesh, scenario.perturb(mesh)))))
    check("distinct devices get distinct offsets",
          not np.array_equal(first,
                             offsets_of(other_mesh,
                                        scenario.perturb(other_mesh))))
    reseeded = FabricationOffsetScenario(sigma=0.02, seed=seed + 1)
    check("distinct lots get distinct offsets",
          not np.array_equal(first, offsets_of(mesh, reseeded.perturb(mesh))))


def check_composition(mesh, seed: int) -> None:
    print("composite (offset fields are additive)")
    members = [FabricationOffsetScenario(sigma=0.02, seed=seed),
               ThermalDriftScenario(sigma=0.05, tau_s=30.0, seed=seed)]
    solo = [FabricationOffsetScenario(sigma=0.02, seed=seed),
            ThermalDriftScenario(sigma=0.05, tau_s=30.0, seed=seed)]
    composite = CompositeScenario(members)
    composite.advance(25.0)
    combined = offsets_of(mesh, composite.perturb(mesh))
    total = np.zeros_like(combined)
    for member in solo:
        member.advance(25.0)
        total = total + offsets_of(mesh, member.perturb(mesh))
    check("composite offsets == sum of member offsets",
          bool(np.allclose(combined, total, atol=1e-12)))
    config = composite.as_config()
    check("config round-trips through the registry",
          [entry["name"] for entry in config] == ["fabrication", "thermal_drift"]
          and build_scenario(config).name == "composite")


def check_registry() -> None:
    print("registry")
    names = list_scenarios()
    check("the three paper scenarios are registered",
          {"thermal_drift", "crosstalk", "fabrication"} <= set(names),
          f"registered: {names}")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trials", type=int, default=200_000,
                        help="ensemble size of the statistical checks")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--dimension", type=int, default=6,
                        help="mesh dimension of the validation device")
    args = parser.parse_args()

    rng = np.random.default_rng(args.seed)
    mesh = decompose_unitary(random_unitary(args.dimension, rng=rng),
                             method="clements")
    other = decompose_unitary(random_unitary(args.dimension, rng=rng),
                              method="clements")

    check_registry()
    check_thermal_drift(mesh, args.trials, args.seed)
    check_crosstalk(mesh, args.trials, args.seed)
    check_fabrication(mesh, other, args.seed)
    check_composition(mesh, args.seed)

    if FAILURES:
        print(f"\n{len(FAILURES)} check(s) FAILED: {FAILURES}")
        return 1
    print("\nall scenario checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
