"""Setuptools shim.

The execution environment is fully offline and has no ``wheel`` package, so
PEP 517 editable installs (which require ``bdist_wheel``) are unavailable.
This shim lets ``pip install -e . --no-build-isolation --no-use-pep517`` (and
plain ``pip install -e .`` with older pip versions) fall back to the classic
``setup.py develop`` code path.  All project metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
