"""Quickstart: train a split optical FCNN with OplixNet and deploy it on MZI meshes.

This walks the full workflow of Fig. 2 of the paper on a small MNIST stand-in:

1. pick a data-assignment scheme (spatial interlace) and a decoder (merge),
2. train the SCVNN student jointly with its CVNN teacher (mutual learning),
3. compare accuracy and MZI area against the conventional ONN baseline,
4. map the trained weights onto simulated MZI meshes and verify that the
   photonic circuit reproduces the software model's predictions.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.core.config import ExperimentConfig, TrainingConfig
from repro.core.pipeline import OplixNet
from repro.core.training import evaluate_accuracy
from repro.experiments.reporting import percent


def main() -> None:
    config = ExperimentConfig(
        name="quickstart",
        architecture="fcnn",
        dataset="mnist",          # synthetic MNIST stand-in (offline environment)
        num_classes=10,
        image_size=(14, 14),
        channels=1,
        assignment="SI",          # spatial interlace: pack adjacent pixel pairs
        decoder="merge",          # proposed learnable merge decoder
        train_samples=800,
        test_samples=200,
        training=TrainingConfig(epochs=8, batch_size=32, learning_rate=0.05, seed=0),
        seed=0,
    )
    pipeline = OplixNet(config)

    print("=== 1. training the SCVNN student with CVNN mutual learning ===")
    student, result = pipeline.train_student(mutual_learning=True, verbose=True)
    print(f"student (split ONN) accuracy : {percent(result.student_test_accuracy)}")
    print(f"teacher (CVNN) accuracy      : {percent(result.teacher_test_accuracy)}")

    print("\n=== 2. reference models ===")
    _cvnn, cvnn_history = pipeline.train_reference("cvnn")
    _rvnn, rvnn_history = pipeline.train_reference("rvnn")
    print(f"conventional ONN (Orig.)     : {percent(cvnn_history.final_test_accuracy)}")
    print(f"real-valued reference (RVNN) : {percent(rvnn_history.final_test_accuracy)}")

    print("\n=== 3. MZI area comparison ===")
    area = pipeline.area_summary()
    print(f"conventional ONN MZIs        : {area['baseline_mzis']:,}")
    print(f"OplixNet MZIs                : {area['proposed_mzis']:,}")
    print(f"area reduction               : {percent(area['reduction'])}")

    print("\n=== 4. photonic deployment (SVD -> MZI phase mapping) ===")
    deployed = pipeline.deploy(student)
    _train, test = pipeline.datasets()
    images = np.stack([test[i][0] for i in range(64)])
    labels = np.array([test[i][1] for i in range(64)])
    scheme = pipeline.student_scheme()
    optical_accuracy = float((deployed.classify(images, scheme) == labels).mean())
    software_accuracy = evaluate_accuracy(
        student,
        loader_of(images, labels),
        scheme,
    )
    print(f"deployed circuit MZIs        : {deployed.mzi_count:,}")
    print(f"software accuracy (64 imgs)  : {percent(software_accuracy)}")
    print(f"optical  accuracy (64 imgs)  : {percent(optical_accuracy)}")


def loader_of(images: np.ndarray, labels: np.ndarray):
    """Wrap a fixed array batch in a one-shot loader for evaluate_accuracy."""
    from repro.data import ArrayDataset, DataLoader

    return DataLoader(ArrayDataset(images, labels, num_classes=10), batch_size=64, shuffle=False)


if __name__ == "__main__":
    main()
