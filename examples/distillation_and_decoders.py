"""Example: mutual learning and the choice of optical output decoder.

Part A reproduces the spirit of Table III on the LeNet-5/CIFAR-10 workload:
the split network is trained once on its own and once jointly with a CVNN
teacher (deep mutual learning with the paper's alpha = 1.0).

Part B reproduces the spirit of Fig. 9 on the FCNN workload: the same split
network is trained with the four output decoders (merge / linear / unitary /
coherent) and their accuracy and extra MZI cost are compared.

Run with:  python examples/distillation_and_decoders.py
"""

from __future__ import annotations

from repro.core.decoders import build_decoder_head
from repro.core.pipeline import OplixNet
from repro.experiments.common import get_workload, workload_config
from repro.experiments.presets import get_preset
from repro.experiments.reporting import format_table, percent


def part_a_mutual_learning() -> None:
    print("=== Part A: SCVNN-CVNN mutual learning (compare with Table III) ===")
    preset = get_preset("bench")
    workload = get_workload("lenet5")
    config = workload_config(workload, preset, seed=0)

    print("training the split LeNet-5 without mutual learning ...")
    _student, plain_history = OplixNet(config).train_student(mutual_learning=False)
    print("training the split LeNet-5 jointly with its CVNN teacher ...")
    _student_ml, ml_result = OplixNet(config).train_student(mutual_learning=True)

    rows = [
        ["LeNet-5 (CIFAR-10 stand-in)", "without ML", percent(plain_history.final_test_accuracy)],
        ["LeNet-5 (CIFAR-10 stand-in)", "with ML", percent(ml_result.student_test_accuracy)],
        ["CVNN teacher", "(jointly trained)", percent(ml_result.teacher_test_accuracy)],
    ]
    print(format_table(["model", "training", "accuracy"], rows))
    print()


def part_b_decoders() -> None:
    print("=== Part B: output decoder comparison (compare with Fig. 9) ===")
    preset = get_preset("bench")
    workload = get_workload("fcnn")
    rows = []
    for decoder in ("merge", "linear", "unitary", "coherent"):
        config = workload_config(workload, preset, seed=0, decoder=decoder)
        pipeline = OplixNet(config)
        _student, history = pipeline.train_student(mutual_learning=False)
        # extra optical cost of the decoder on the paper-size FCNN head (50 -> 10)
        head = build_decoder_head(decoder, in_features=50, num_classes=10)
        rows.append([decoder, percent(history.final_test_accuracy),
                     head.extra_mzis(), "yes" if head.needs_post_processing else "no"])
    print(format_table(["decoder", "accuracy", "extra MZIs (paper FCNN)", "post-processing"], rows))
    print()
    print("Expected shape: the merge decoder reaches the best accuracy of the")
    print("learnable decoders while adding fewer MZIs than linear/unitary; the")
    print("coherent baseline adds no optics but needs reference light, extra")
    print("measurement time and digital post-processing.")


def main() -> None:
    part_a_mutual_learning()
    part_b_decoders()


if __name__ == "__main__":
    main()
