"""Example: how the real-to-complex data assignment affects accuracy and area.

Reproduces the spirit of Fig. 8 on two workloads:

* the FCNN/MNIST workload with the three *spatial* schemes (interlace,
  half-half, symmetric) -- all save ~75% of the MZIs, but packing adjacent
  (correlated) pixels loses the least accuracy;
* the LeNet-5/CIFAR-10 workload with the *channel* schemes (channel lossless
  vs the lossy channel remapping) and the spatial interlace for contrast --
  only channel schemes shrink convolution kernels.

Run with:  python examples/assignment_study.py
"""

from __future__ import annotations

from repro.core.pipeline import OplixNet
from repro.experiments.common import get_workload, paper_specs, workload_config
from repro.experiments.presets import get_preset
from repro.experiments.reporting import format_table, percent
from repro.core.area_analysis import compare_area
from repro.models import build_model


def area_reduction(workload, scheme: str) -> float:
    """Exact MZI reduction of a scheme at the paper's full model sizes."""
    scvnn_spec, cvnn_spec = paper_specs(workload, assignment=scheme)
    return compare_area(build_model(scvnn_spec), build_model(cvnn_spec))["reduction"]


def evaluate(workload_key: str, schemes) -> list:
    preset = get_preset("bench")
    workload = get_workload(workload_key)
    rows = []
    for scheme in schemes:
        config = workload_config(workload, preset, seed=0, assignment=scheme)
        pipeline = OplixNet(config)
        _student, history = pipeline.train_student(mutual_learning=False)
        rows.append([workload.display_name, scheme,
                     percent(history.final_test_accuracy),
                     percent(area_reduction(workload, scheme))])
    return rows


def main() -> None:
    rows = []
    print("training the FCNN workload with the three spatial schemes ...")
    rows += evaluate("fcnn", ("SI", "SH", "SS"))
    print("training the LeNet-5 workload with channel and spatial schemes ...")
    rows += evaluate("lenet5", ("CL", "CR", "SI"))
    print()
    print(format_table(
        ["Model", "Assignment", "Accuracy", "MZI reduction (paper scale)"], rows,
        title="Data assignment study (compare with Fig. 8 of the paper)"))
    print()
    print("Expected shape: SI is the best spatial scheme on the FCNN; CL gives the")
    print("best area/accuracy trade-off on CNNs while CR saves more area but loses")
    print("accuracy and SI cannot shrink the convolution kernels at all.")


if __name__ == "__main__":
    main()
