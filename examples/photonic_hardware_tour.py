"""Example: a tour of the photonic hardware substrate.

Demonstrates the building blocks the OplixNet framework deploys onto, without
any neural-network training:

1. the MZI transfer matrix of Eq. (1) and its power model,
2. Reck vs Clements mesh decompositions of a random unitary,
3. SVD mapping of an arbitrary weight matrix onto meshes + attenuators,
4. the proposed DC-based complex encoder vs the PS-based encoder of [16]
   (area budget and throughput),
5. coherent detection vs photodiode detection,
6. the effect of phase noise and finite phase-resolution on a deployed matrix.

Run with:  python examples/photonic_hardware_tour.py
"""

from __future__ import annotations

import numpy as np

from repro.photonics import (
    CoherentDetector,
    DCComplexEncoder,
    MZI,
    PhaseNoiseModel,
    PhotodiodeDetector,
    PSComplexEncoder,
    clements_decompose,
    mzi_count_matrix,
    mzi_transfer,
    quantize_phases,
    random_unitary,
    reck_decompose,
    svd_decompose,
)


def section(title: str) -> None:
    print(f"\n=== {title} ===")


def main() -> None:
    rng = np.random.default_rng(0)

    section("1. a single MZI (Eq. 1)")
    mzi = MZI(theta=np.pi / 3, phi=np.pi / 4)
    print("transfer matrix:\n", np.round(mzi.transfer_matrix(), 3))
    print(f"unitary: {np.allclose(mzi.transfer_matrix().conj().T @ mzi.transfer_matrix(), np.eye(2))}")
    print(f"static heater power: {mzi.power_mw():.1f} mW")

    section("2. mesh decompositions of an 8x8 unitary")
    unitary = random_unitary(8, rng)
    for name, decompose in (("Reck (triangular)", reck_decompose),
                            ("Clements (rectangular)", clements_decompose)):
        mesh = decompose(unitary)
        error = np.abs(mesh.reconstruct() - unitary).max()
        print(f"{name:24s}: {mesh.mzi_count} MZIs, reconstruction error {error:.2e}, "
              f"heater power {mesh.total_phase_power_mw():.0f} mW")

    section("3. SVD mapping of a 6x10 weight matrix")
    weight = rng.normal(size=(6, 10))
    photonic = svd_decompose(weight)
    vector = rng.normal(size=10) + 1j * rng.normal(size=10)
    print(f"closed-form #MZI  : {mzi_count_matrix(6, 10)}")
    print(f"deployed  #devices: {photonic.device_count} (meshes + attenuators)")
    print(f"matrix error      : {np.abs(photonic.matrix() - weight).max():.2e}")
    print(f"MVM error         : {np.abs(photonic.apply(vector) - weight @ vector).max():.2e}")

    section("4. complex input encoders (Fig. 3)")
    dc_encoder, ps_encoder = DCComplexEncoder(), PSComplexEncoder()
    print(f"DC encoder: 0.3, -0.8 -> {dc_encoder.encode_pair(0.3, -0.8):+.2f} "
          f"(no thermal bottleneck: {not dc_encoder.has_time_bottleneck})")
    samples = 1_000_000
    print(f"streaming {samples:,} samples: DC encoder {dc_encoder.encoding_latency(samples):.2e} s, "
          f"PS encoder {ps_encoder.encoding_latency(samples):.2e} s")
    budget = dc_encoder.area_budget(392)
    print(f"DC encoder budget for 392 complex inputs: {budget.modulators} modulators, "
          f"{budget.directional_couplers} DCs, {budget.thermal_phase_shifters} thermal PSs")

    section("5. output detection (Fig. 6c)")
    signal = rng.normal(size=4) + 1j * rng.normal(size=4)
    photodiode = PhotodiodeDetector("amplitude")
    coherent = CoherentDetector(reference_amplitude=1.0)
    print("complex outputs      :", np.round(signal, 3))
    print("photodiode amplitudes:", np.round(photodiode.detect(signal), 3), "(phase lost)")
    print("coherent recovery    :", np.round(coherent.detect(signal), 3),
          f"(needs {coherent.detectors_required(4)} detectors + post-processing)")

    section("6. non-idealities on a deployed matrix")
    clean = svd_decompose(rng.normal(size=(8, 8)))
    reference = clean.matrix()
    for sigma in (0.001, 0.01, 0.05):
        noisy_left = PhaseNoiseModel(sigma=sigma, rng=np.random.default_rng(1)).perturb(clean.left_mesh)
        error = np.abs(noisy_left.reconstruct() - clean.left_mesh.reconstruct()).max()
        print(f"phase noise sigma={sigma:<6}: max mesh error {error:.3e}")
    for bits in (4, 6, 8):
        quantized = quantize_phases(clean.left_mesh, bits)
        error = np.abs(quantized.reconstruct() - clean.left_mesh.reconstruct()).max()
        print(f"{bits}-bit phase DACs     : max mesh error {error:.3e}")
    print(f"(clean deployment error: {np.abs(reference - clean.matrix()).max():.1e})")


if __name__ == "__main__":
    main()
