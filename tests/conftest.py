"""Shared fixtures for the OplixNet reproduction test-suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.dataset import ArrayDataset
from repro.tensor.random import seed_all


@pytest.fixture
def rng() -> np.random.Generator:
    """A freshly seeded generator for each test."""
    return np.random.default_rng(1234)


@pytest.fixture(autouse=True)
def _reset_default_rng():
    """Keep the library-wide default generator deterministic across tests."""
    seed_all(0)
    yield


@pytest.fixture
def tiny_image_dataset(rng) -> ArrayDataset:
    """A tiny 3-channel image classification dataset (2 well-separated classes)."""
    samples, channels, height, width = 40, 3, 8, 8
    labels = np.arange(samples) % 2
    images = rng.normal(0.0, 0.3, size=(samples, channels, height, width))
    images[labels == 1] += 1.5
    return ArrayDataset(images, labels, num_classes=2)


@pytest.fixture
def tiny_flat_dataset(rng) -> ArrayDataset:
    """A tiny single-channel dataset for FCNN-style tests (2 classes)."""
    samples, height, width = 60, 6, 6
    labels = np.arange(samples) % 2
    images = rng.normal(0.0, 0.4, size=(samples, 1, height, width))
    images[labels == 1, :, :3, :] += 1.2
    images[labels == 0, :, 3:, :] += 1.2
    return ArrayDataset(images, labels, num_classes=2)
