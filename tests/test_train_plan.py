"""Tests of the compiled training step (tape-to-plan lowering).

The contract under test: a :class:`~repro.core.training.Trainer` with
``compile_train_step=True`` must produce **bit-identical** training
trajectories to the eager tape — same per-epoch losses, same final
parameters, same batch-norm running buffers — while actually replaying a
compiled plan (not silently falling back to eager).
"""

import numpy as np
import pytest

from repro.assignment import get_scheme
from repro.core.config import TrainingConfig
from repro.core.training import Trainer
from repro.data import DataLoader
from repro.data.dataset import ArrayDataset
from repro.models import ComplexFCNN, ComplexLeNet5, ComplexResNet
from repro.nn import Dropout, Linear, Module, ReLU, Sequential
from repro.tensor.random import seed_all


def flat_dataset(rng):
    samples, height, width = 60, 6, 6
    labels = np.arange(samples) % 2
    images = rng.normal(0.0, 0.4, size=(samples, 1, height, width))
    images[labels == 1, :, :3, :] += 1.2
    images[labels == 0, :, 3:, :] += 1.2
    return ArrayDataset(images, labels, num_classes=2)


def image_dataset(rng):
    samples = 40
    labels = np.arange(samples) % 2
    images = rng.normal(0.0, 0.4, size=(samples, 2, 32, 16))
    images[labels == 1, :, :16] += 1.0
    return ArrayDataset(images, labels, num_classes=2)


def build_model(name):
    rng = np.random.default_rng(7)
    if name == "fcnn":
        return ComplexFCNN(18, (12,), 2, decoder="merge", rng=rng)
    if name == "lenet":
        return ComplexLeNet5(in_channels=2, num_classes=2, image_size=(16, 16),
                             channels=(3, 8), hidden_sizes=(30, 21),
                             kernel_size=3, padding=1, rng=rng)
    return ComplexResNet(depth=8, in_channels=2, num_classes=2,
                         base_widths=(2, 4, 8), decoder="merge", rng=rng)


def fit_once(name, compiled, optimizer="sgd", scheduler="none", epochs=2):
    """One full training run from a fixed seed; returns (model, trainer, history)."""
    seed_all(0)
    rng = np.random.default_rng(1234)
    dataset = flat_dataset(rng) if name == "fcnn" else image_dataset(rng)
    model = build_model(name)
    config = TrainingConfig(epochs=epochs, batch_size=16, learning_rate=0.05,
                            optimizer=optimizer, scheduler=scheduler, seed=0)
    trainer = Trainer(model, config, scheme=get_scheme("SI"),
                      compile_train_step=compiled)
    loader = DataLoader(dataset, batch_size=16, shuffle=True,
                        rng=np.random.default_rng(0))
    history = trainer.fit(loader)
    return model, trainer, history


def assert_state_dicts_equal(eager_model, planned_model):
    eager_state = eager_model.state_dict()
    planned_state = planned_model.state_dict()
    assert eager_state.keys() == planned_state.keys()
    mismatched = [key for key in eager_state
                  if not np.array_equal(np.asarray(eager_state[key]),
                                        np.asarray(planned_state[key]))]
    assert not mismatched, f"state diverged at {mismatched}"


class TestTrajectoryParity:
    """Planned and eager runs must be bit-identical, not merely close."""

    @pytest.mark.parametrize("name,optimizer", [
        ("fcnn", "sgd"),
        ("lenet", "sgd"),
        ("lenet", "adam"),
        ("resnet", "sgd"),
        ("resnet", "adam"),
    ])
    def test_multi_epoch_trajectory_is_bit_identical(self, name, optimizer):
        eager_model, _, eager_history = fit_once(name, False, optimizer)
        planned_model, planned_trainer, planned_history = fit_once(name, True, optimizer)
        stats = planned_trainer.plan_stats
        assert stats["fallback_reason"] is None
        assert stats["compiled"] >= 1
        # exact float equality: the plan replays the same instruction stream
        assert planned_history.train_loss == eager_history.train_loss
        assert planned_history.train_accuracy == eager_history.train_accuracy
        # state_dict covers parameters AND batch-norm running buffers
        assert_state_dicts_equal(eager_model, planned_model)

    def test_tail_batch_gets_its_own_plan(self):
        # 40 samples at batch 16 -> shapes (16, ...) and (8, ...): two plans
        _, trainer, _ = fit_once("lenet", True)
        assert trainer.plan_stats["compiled"] == 2
        for plan_stats in trainer.plan_stats["plans"].values():
            assert plan_stats["forward_instructions"] > 0
            assert plan_stats["backward_instructions"] > 0

    def test_plan_uses_specialized_kernels(self):
        _, trainer, _ = fit_once("resnet", True, epochs=1)
        plans = trainer.plan_stats["plans"]
        assert plans
        for plan_stats in plans.values():
            # conv / linear / batch-norm backwards lower to dedicated builders
            assert plan_stats["specialized_backward"] > 0
            # relu / sigmoid chains collapse into fused instructions
            assert plan_stats["fused_activations"] > 0
            assert plan_stats["parameter_gradients"] > 0


class TestPlannedGradients:
    """The plan's backward pass must agree with finite differences."""

    def _compiled_plan(self):
        seed_all(0)
        rng = np.random.default_rng(1234)
        model = ComplexFCNN(18, (12,), 2, decoder="merge", rng=rng)
        config = TrainingConfig(epochs=1, batch_size=8, learning_rate=0.05, seed=0)
        trainer = Trainer(model, config, scheme=get_scheme("SI"),
                          compile_train_step=True)
        trainer.optimizer.lr = 0.0  # keep the parameters frozen at the trace point
        images = rng.normal(size=(8, 1, 6, 6))
        labels = rng.integers(0, 2, size=8)
        trainer.model.train()
        trainer.train_step(images, labels)  # trace + compile
        assert trainer.plan_stats["compiled"] == 1, trainer.plan_stats
        plan = next(iter(trainer._plans.values()))
        inputs = trainer._plan_inputs(images, labels, plan.input_meta)
        return model, plan, inputs

    def test_execute_without_update_leaves_grads_bound(self):
        model, plan, inputs = self._compiled_plan()
        before = {name: parameter.data.copy()
                  for name, parameter in model.named_parameters()}
        plan.execute(inputs, update=False)
        for name, parameter in model.named_parameters():
            assert parameter.grad is not None, name
            assert parameter.grad.shape == parameter.data.shape
            assert np.array_equal(parameter.data, before[name]), name
        # the grad buffers are persistent: re-executing rebinds the same arrays
        bound = {name: parameter.grad for name, parameter in model.named_parameters()}
        plan.execute(inputs, update=False)
        for name, parameter in model.named_parameters():
            assert parameter.grad is bound[name], name

    def test_planned_backward_matches_finite_differences(self):
        model, plan, inputs = self._compiled_plan()
        loss, _ = plan.execute(inputs, update=False)
        assert np.isfinite(loss)
        analytic = {name: parameter.grad.copy()
                    for name, parameter in model.named_parameters()}
        step = 1e-6
        rng = np.random.default_rng(3)
        for name, parameter in model.named_parameters():
            flat = parameter.data.reshape(-1)
            for index in rng.choice(flat.size, size=min(3, flat.size), replace=False):
                original = flat[index]
                flat[index] = original + step
                loss_plus, _ = plan.execute(inputs, update=False)
                flat[index] = original - step
                loss_minus, _ = plan.execute(inputs, update=False)
                flat[index] = original
                numeric = (loss_plus - loss_minus) / (2.0 * step)
                expected = analytic[name].reshape(-1)[index]
                assert numeric == pytest.approx(expected, rel=1e-4, abs=1e-6), name


class TestSchedulerInteraction:
    """The learning rate is read per step, never baked into the plan."""

    def test_cosine_schedule_trajectory_is_bit_identical(self):
        eager_model, _, eager_history = fit_once("fcnn", False, scheduler="cosine",
                                                 epochs=3)
        planned_model, planned_trainer, planned_history = fit_once(
            "fcnn", True, scheduler="cosine", epochs=3)
        assert planned_trainer.plan_stats["compiled"] >= 1
        assert planned_history.train_loss == eager_history.train_loss
        assert_state_dicts_equal(eager_model, planned_model)

    def test_manual_lr_change_affects_compiled_plan(self, rng):
        seed_all(0)
        model = ComplexFCNN(18, (12,), 2, decoder="merge",
                            rng=np.random.default_rng(7))
        config = TrainingConfig(epochs=1, batch_size=8, learning_rate=0.05, seed=0)
        trainer = Trainer(model, config, scheme=get_scheme("SI"),
                          compile_train_step=True)
        images = rng.normal(size=(8, 1, 6, 6))
        labels = rng.integers(0, 2, size=8)
        trainer.model.train()
        trainer.train_step(images, labels)
        assert trainer.plan_stats["compiled"] == 1
        trainer.optimizer.lr = 0.0  # a plan with lr baked in would keep moving
        before = {name: parameter.data.copy()
                  for name, parameter in model.named_parameters()}
        trainer.train_step(images, labels)
        for name, parameter in model.named_parameters():
            assert np.array_equal(parameter.data, before[name]), name


class _DropoutNet(Module):
    """A real-valued net whose dropout mask makes the trace volatile."""

    def __init__(self, rng):
        super().__init__()
        self.network = Sequential(Linear(36, 16, rng=rng), ReLU(),
                                  Dropout(0.5, rng=rng), Linear(16, 2, rng=rng))

    def forward(self, inputs):
        return self.network(inputs.flatten(start_dim=1))


class TestFallbackAndOverrides:
    def test_volatile_trace_falls_back_to_eager(self, rng):
        model = _DropoutNet(np.random.default_rng(7))
        config = TrainingConfig(epochs=1, batch_size=8, learning_rate=0.05, seed=0)
        trainer = Trainer(model, config, compile_train_step=True)
        images = rng.normal(size=(8, 1, 6, 6))
        labels = rng.integers(0, 2, size=8)
        trainer.model.train()
        loss, _ = trainer.train_step(images, labels)
        assert np.isfinite(loss)
        stats = trainer.plan_stats
        assert stats["compiled"] == 0
        assert stats["fallback_reason"] is not None
        assert "dropout" in stats["fallback_reason"]
        # training keeps working on the eager path
        loss, _ = trainer.train_step(images, labels)
        assert np.isfinite(loss)
        assert trainer.plan_stats["compiled"] == 0

    def test_env_variable_disables_compilation(self, monkeypatch, rng):
        monkeypatch.setenv("REPRO_TRAIN_PLAN", "0")
        model = ComplexFCNN(18, (12,), 2, decoder="merge",
                            rng=np.random.default_rng(7))
        config = TrainingConfig(epochs=1, batch_size=8, learning_rate=0.05, seed=0)
        trainer = Trainer(model, config, scheme=get_scheme("SI"),
                          compile_train_step=True)
        assert trainer.plan_stats["enabled"] is False
        images = rng.normal(size=(8, 1, 6, 6))
        labels = rng.integers(0, 2, size=8)
        trainer.model.train()
        trainer.train_step(images, labels)
        assert trainer.plan_stats["compiled"] == 0

    def test_env_variable_forces_compilation(self, monkeypatch, rng):
        monkeypatch.setenv("REPRO_TRAIN_PLAN", "1")
        model = ComplexFCNN(18, (12,), 2, decoder="merge",
                            rng=np.random.default_rng(7))
        config = TrainingConfig(epochs=1, batch_size=8, learning_rate=0.05, seed=0)
        trainer = Trainer(model, config, scheme=get_scheme("SI"),
                          compile_train_step=False)
        assert trainer.plan_stats["enabled"] is True
        images = rng.normal(size=(8, 1, 6, 6))
        labels = rng.integers(0, 2, size=8)
        trainer.model.train()
        trainer.train_step(images, labels)
        assert trainer.plan_stats["compiled"] == 1

    def test_eval_mode_skips_the_plan(self, rng):
        model = ComplexFCNN(18, (12,), 2, decoder="merge",
                            rng=np.random.default_rng(7))
        config = TrainingConfig(epochs=1, batch_size=8, learning_rate=0.05, seed=0)
        trainer = Trainer(model, config, scheme=get_scheme("SI"),
                          compile_train_step=True)
        images = rng.normal(size=(8, 1, 6, 6))
        labels = rng.integers(0, 2, size=8)
        trainer.model.eval()
        trainer.train_step(images, labels)
        assert trainer.plan_stats["compiled"] == 0
