"""Tests of seeding and weight-initialisation utilities."""

import numpy as np
import pytest

from repro.tensor import random as rnd


class TestSeeding:
    def test_seed_all_is_deterministic(self):
        first = rnd.seed_all(42).normal(size=5)
        second = rnd.seed_all(42).normal(size=5)
        assert np.allclose(first, second)

    def test_default_rng_passthrough(self):
        custom = np.random.default_rng(7)
        assert rnd.default_rng(custom) is custom

    def test_default_rng_uses_global(self):
        rnd.seed_all(3)
        assert rnd.default_rng(None) is rnd.default_rng()


class TestInitializers:
    def test_kaiming_uniform_bounds(self):
        weights = rnd.kaiming_uniform((64, 256), rng=np.random.default_rng(0))
        bound = np.sqrt(2.0) * np.sqrt(3.0 / 256)
        assert np.abs(weights).max() <= bound + 1e-12

    def test_kaiming_normal_std(self):
        weights = rnd.kaiming_normal((1000, 500), rng=np.random.default_rng(0))
        expected_std = np.sqrt(2.0) / np.sqrt(500)
        assert weights.std() == pytest.approx(expected_std, rel=0.05)

    def test_xavier_uniform_bounds(self):
        weights = rnd.xavier_uniform((100, 300), rng=np.random.default_rng(0))
        bound = np.sqrt(6.0 / 400)
        assert np.abs(weights).max() <= bound + 1e-12

    def test_xavier_normal_std(self):
        weights = rnd.xavier_normal((400, 600), rng=np.random.default_rng(0))
        assert weights.std() == pytest.approx(np.sqrt(2.0 / 1000), rel=0.05)

    def test_conv_fan_computation(self):
        weights = rnd.kaiming_uniform((8, 4, 3, 3), rng=np.random.default_rng(0))
        bound = np.sqrt(2.0) * np.sqrt(3.0 / (4 * 9))
        assert np.abs(weights).max() <= bound + 1e-12

    def test_unsupported_shape_raises(self):
        with pytest.raises(ValueError):
            rnd.kaiming_uniform((2, 3, 4), rng=np.random.default_rng(0))

    def test_complex_init_shapes_and_distribution(self):
        real, imag = rnd.complex_init((200, 100), rng=np.random.default_rng(0))
        assert real.shape == (200, 100) and imag.shape == (200, 100)
        magnitude = np.hypot(real, imag)
        # Rayleigh with sigma = 1/sqrt(fan_in + fan_out): mean = sigma * sqrt(pi/2)
        sigma = 1.0 / np.sqrt(300)
        assert magnitude.mean() == pytest.approx(sigma * np.sqrt(np.pi / 2), rel=0.05)

    def test_complex_init_he_criterion(self):
        real, imag = rnd.complex_init((50, 200), rng=np.random.default_rng(0), criterion="he")
        magnitude = np.hypot(real, imag)
        sigma = 1.0 / np.sqrt(200)
        assert magnitude.mean() == pytest.approx(sigma * np.sqrt(np.pi / 2), rel=0.1)

    def test_complex_init_bad_criterion(self):
        with pytest.raises(ValueError):
            rnd.complex_init((4, 4), criterion="bogus")

    def test_initializers_are_reproducible_from_seed(self):
        a = rnd.kaiming_uniform((10, 10), rng=np.random.default_rng(5))
        b = rnd.kaiming_uniform((10, 10), rng=np.random.default_rng(5))
        assert np.allclose(a, b)
