"""Tests of the supervised training loop (Trainer) on tiny synthetic tasks."""

import numpy as np
import pytest

from repro.assignment import get_scheme
from repro.core.config import TrainingConfig
from repro.core.training import (
    Trainer,
    TrainingHistory,
    apply_parameter_constraints,
    evaluate_accuracy,
    prepare_batch,
)
from repro.data import DataLoader
from repro.models import ComplexFCNN, RealFCNN
from repro.nn.complex import ComplexTensor
from repro.tensor import Tensor


def loaders(dataset, batch_size=16):
    train_loader = DataLoader(dataset, batch_size=batch_size, shuffle=True,
                              rng=np.random.default_rng(0))
    test_loader = DataLoader(dataset, batch_size=batch_size, shuffle=False)
    return train_loader, test_loader


class TestPrepareBatch:
    def test_real_path(self, rng):
        images = rng.normal(size=(4, 1, 6, 6))
        batch = prepare_batch(images, None)
        assert isinstance(batch, Tensor)
        assert batch.shape == (4, 1, 6, 6)

    def test_complex_path_uses_scheme(self, rng):
        images = rng.normal(size=(4, 1, 6, 6))
        batch = prepare_batch(images, get_scheme("SI"))
        assert isinstance(batch, ComplexTensor)
        assert batch.shape == (4, 1, 3, 6)

    def test_conventional_scheme_keeps_shape(self, rng):
        images = rng.normal(size=(2, 3, 4, 4))
        batch = prepare_batch(images, get_scheme("conventional"))
        assert batch.shape == (2, 3, 4, 4)
        assert np.allclose(batch.imag.data, 0.0)


class TestTrainerRealModel:
    def test_loss_decreases_and_accuracy_improves(self, tiny_flat_dataset, rng):
        model = RealFCNN(36, (16,), 2, rng=rng)
        config = TrainingConfig(epochs=6, batch_size=16, learning_rate=0.05, seed=0)
        trainer = Trainer(model, config, scheme=None)
        train_loader, test_loader = loaders(tiny_flat_dataset)
        history = trainer.fit(train_loader, test_loader)
        assert isinstance(history, TrainingHistory)
        assert len(history.train_loss) == 6
        assert history.train_loss[-1] < history.train_loss[0]
        assert history.final_test_accuracy > 0.8
        assert history.best_test_accuracy >= history.final_test_accuracy

    def test_evaluate_accuracy_range(self, tiny_flat_dataset, rng):
        model = RealFCNN(36, (8,), 2, rng=rng)
        _, test_loader = loaders(tiny_flat_dataset)
        accuracy = evaluate_accuracy(model, test_loader, None)
        assert 0.0 <= accuracy <= 1.0

    def test_scheduler_updates_learning_rate(self, tiny_flat_dataset, rng):
        model = RealFCNN(36, (8,), 2, rng=rng)
        config = TrainingConfig(epochs=3, scheduler="cosine", learning_rate=0.1, seed=0)
        trainer = Trainer(model, config)
        train_loader, _ = loaders(tiny_flat_dataset)
        initial_lr = trainer.optimizer.lr
        trainer.fit(train_loader)
        assert trainer.optimizer.lr < initial_lr

    def test_adam_optimizer_option(self, tiny_flat_dataset, rng):
        model = RealFCNN(36, (8,), 2, rng=rng)
        config = TrainingConfig(epochs=2, optimizer="adam", learning_rate=0.01, seed=0)
        trainer = Trainer(model, config)
        assert type(trainer.optimizer).__name__ == "Adam"
        train_loader, test_loader = loaders(tiny_flat_dataset)
        history = trainer.fit(train_loader, test_loader)
        assert history.final_test_accuracy > 0.6


class TestTrainerComplexModel:
    def test_scvnn_trains_above_chance(self, tiny_flat_dataset, rng):
        scheme = get_scheme("SI")
        model = ComplexFCNN(18, (12,), 2, decoder="merge", rng=rng)
        config = TrainingConfig(epochs=6, batch_size=16, learning_rate=0.05, seed=0)
        trainer = Trainer(model, config, scheme=scheme)
        train_loader, test_loader = loaders(tiny_flat_dataset)
        history = trainer.fit(train_loader, test_loader)
        assert history.final_test_accuracy > 0.75

    def test_unitary_decoder_stays_unitary_during_training(self, tiny_flat_dataset, rng):
        scheme = get_scheme("SI")
        model = ComplexFCNN(18, (8,), 2, decoder="unitary", rng=rng)
        config = TrainingConfig(epochs=2, batch_size=16, learning_rate=0.05, seed=0)
        trainer = Trainer(model, config, scheme=scheme)
        train_loader, _ = loaders(tiny_flat_dataset)
        trainer.fit(train_loader)
        assert model.head.unitary.unitarity_error() < 1e-8

    def test_apply_parameter_constraints_direct(self, rng):
        model = ComplexFCNN(6, (4,), 2, decoder="unitary", rng=rng)
        model.head.unitary.weight_real.data += 0.5
        apply_parameter_constraints(model)
        assert model.head.unitary.unitarity_error() < 1e-8


class TestConfigValidation:
    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            TrainingConfig(epochs=0)
        with pytest.raises(ValueError):
            TrainingConfig(learning_rate=-1)
        with pytest.raises(ValueError):
            TrainingConfig(optimizer="rmsprop")
        with pytest.raises(ValueError):
            TrainingConfig(scheduler="exponential")
        with pytest.raises(ValueError):
            TrainingConfig(distillation_alpha=-0.1)
