"""Tests of the serving subsystem (:mod:`repro.serve`).

Covers the dynamic micro-batcher (scatter correctness under concurrency,
flush policy, single-sample convenience, error relay, lifecycle), the LRU
program cache and the inference-service frontend.
"""

import threading

import numpy as np
import pytest

import repro
from repro.assignment import get_scheme
from repro.core.compile import CompileOptions, HardwareTarget
from repro.models import ComplexFCNN
from repro.photonics.noise import PhaseNoiseModel
from repro.serve import (
    DynamicBatcher,
    PhotonicInferenceService,
    ProgramCache,
    cache_key,
    run_serving_benchmark,
)
from tests.test_compile import tiny_lenet


@pytest.fixture
def lenet_program(rng):
    return repro.compile(tiny_lenet(rng)), get_scheme("CL")


class TestDynamicBatcher:
    def test_batched_results_match_direct_calls(self, lenet_program, rng):
        program, scheme = lenet_program
        requests = [rng.normal(size=(2, 3, 12, 12)) for _ in range(7)]
        expected = [program.predict_logits(images, scheme) for images in requests]
        with DynamicBatcher(program, scheme, max_batch=6, max_latency_s=0.05) as batcher:
            futures = [batcher.submit(images) for images in requests]
            for future, want in zip(futures, expected):
                assert np.allclose(future.result(timeout=30), want, atol=1e-10)

    def test_concurrent_clients_get_their_own_rows(self, lenet_program, rng):
        program, scheme = lenet_program
        pool = rng.normal(size=(24, 1, 3, 12, 12))
        expected = program.predict_logits(pool.reshape(24, 3, 12, 12), scheme)
        results = [None] * 24
        with DynamicBatcher(program, scheme, max_batch=16,
                            max_latency_s=0.005) as batcher:
            def client(worker):
                for index in range(worker, 24, 4):
                    results[index] = batcher.submit(pool[index]).result(timeout=30)

            threads = [threading.Thread(target=client, args=(w,)) for w in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        for index in range(24):
            assert np.allclose(results[index], expected[index:index + 1],
                               atol=1e-10), index

    def test_requests_coalesce_into_batches(self, lenet_program, rng):
        program, scheme = lenet_program
        with DynamicBatcher(program, scheme, max_batch=8,
                            max_latency_s=0.25) as batcher:
            futures = [batcher.submit(rng.normal(size=(1, 3, 12, 12)))
                       for _ in range(8)]
            for future in futures:
                future.result(timeout=30)
            stats = batcher.stats
        assert stats.requests == 8
        assert stats.samples == 8
        # eight one-sample requests under a generous latency budget must not
        # have run as eight separate forwards
        assert stats.batches < 8
        assert stats.max_batch_samples > 1

    def test_single_sample_results_are_squeezed(self, lenet_program, rng):
        program, scheme = lenet_program
        sample = rng.normal(size=(3, 12, 12))
        with DynamicBatcher(program, scheme, max_batch=4,
                            max_latency_s=0.001) as batcher:
            logits = batcher.logits(sample)
            label = batcher.classify(sample)
        expected = program.predict_logits(sample[None], scheme)[0]
        assert logits.shape == expected.shape
        assert np.allclose(logits, expected, atol=1e-10)
        assert label == int(expected.argmax())

    def test_classify_and_logits_mix_in_one_flush(self, lenet_program, rng):
        program, scheme = lenet_program
        images = rng.normal(size=(2, 3, 12, 12))
        with DynamicBatcher(program, scheme, max_batch=16,
                            max_latency_s=0.1) as batcher:
            logits_future = batcher.submit(images, kind="logits")
            classify_future = batcher.submit(images, kind="classify")
            logits = logits_future.result(timeout=30)
            labels = classify_future.result(timeout=30)
        assert np.array_equal(labels, logits.argmax(axis=-1))

    def test_invalid_submissions_rejected(self, lenet_program, rng):
        program, scheme = lenet_program
        with DynamicBatcher(program, scheme) as batcher:
            with pytest.raises(ValueError, match="kind"):
                batcher.submit(rng.normal(size=(1, 3, 12, 12)), kind="bogus")
            with pytest.raises(ValueError, match="batch"):
                batcher.submit(rng.normal(size=(12, 12)))

    def test_execution_errors_reach_the_caller(self, lenet_program, rng):
        program, scheme = lenet_program
        with DynamicBatcher(program, scheme, max_latency_s=0.001) as batcher:
            future = batcher.submit(rng.normal(size=(1, 5, 12, 12)))  # wrong channels
            with pytest.raises(Exception):
                future.result(timeout=30)
            # the executor thread must survive a failed flush
            good = batcher.submit(rng.normal(size=(1, 3, 12, 12)))
            good.result(timeout=30)

    def test_mismatched_shapes_fail_their_futures_not_the_worker(self, lenet_program, rng):
        # two co-batched requests whose images cannot concatenate must fail
        # with an exception on their futures, and the worker must live on
        program, scheme = lenet_program
        with DynamicBatcher(program, scheme, max_batch=8,
                            max_latency_s=0.5) as batcher:
            first = batcher.submit(rng.normal(size=(1, 3, 12, 12)))
            second = batcher.submit(rng.normal(size=(1, 3, 9, 9)))
            with pytest.raises(Exception):
                second.result(timeout=30)            # the 9x9 request must fail
            try:
                first.result(timeout=30)             # fails only if co-batched
            except Exception:
                pass
            good = batcher.submit(rng.normal(size=(1, 3, 12, 12)))
            good.result(timeout=30)

    def test_cancelled_requests_are_skipped(self, lenet_program, rng):
        program, scheme = lenet_program
        with DynamicBatcher(program, scheme, max_batch=8,
                            max_latency_s=0.2) as batcher:
            doomed = batcher.submit(rng.normal(size=(1, 3, 12, 12)))
            kept = batcher.submit(rng.normal(size=(1, 3, 12, 12)))
            cancelled = doomed.cancel()
            kept.result(timeout=30)                  # worker survived the cancel
            if cancelled:
                assert doomed.cancelled()
            assert batcher.stats.requests >= 1

    def test_closed_batcher_rejects_submissions(self, lenet_program, rng):
        program, scheme = lenet_program
        batcher = DynamicBatcher(program, scheme)
        batcher.close()
        with pytest.raises(RuntimeError, match="closed"):
            batcher.submit(rng.normal(size=(1, 3, 12, 12)))

    def test_invalid_policy_rejected(self, lenet_program):
        program, scheme = lenet_program
        with pytest.raises(ValueError):
            DynamicBatcher(program, scheme, max_batch=0)
        with pytest.raises(ValueError):
            DynamicBatcher(program, scheme, max_latency_s=-1.0)

    def test_noisy_program_scatter_keeps_trials_axes(self, lenet_program, rng):
        program, scheme = lenet_program
        noisy = program.with_noise(noise=PhaseNoiseModel.seeded(0.02, seed=3),
                                   trials=3)
        images = rng.normal(size=(2, 3, 12, 12))
        expected = noisy.predict_logits(images, scheme)
        with DynamicBatcher(noisy, scheme, max_batch=2,
                            max_latency_s=0.001) as batcher:
            got = batcher.submit(images).result(timeout=30)
        assert got.shape == expected.shape           # (trials, batch, classes)
        assert np.allclose(got, expected, atol=1e-10)


class _StubProgram:
    """Predictable in-test stand-in for a compiled program."""

    def __init__(self, fn):
        self._fn = fn

    def predict_logits(self, images, scheme):
        return self._fn(np.asarray(images))


def _identity_logits(images):
    return images.reshape(images.shape[0], -1)


class TestBatcherEdgeCases:
    """Edge semantics the sharded frontend builds on."""

    def test_zero_sample_request_rejected(self):
        with DynamicBatcher(_StubProgram(_identity_logits), None) as batcher:
            with pytest.raises(ValueError, match="zero-sample"):
                batcher.submit(np.zeros((0, 1, 2, 2)))

    def test_oversized_request_runs_alone(self):
        with DynamicBatcher(_StubProgram(_identity_logits), None, max_batch=4,
                            max_latency_s=0.2) as batcher:
            big = batcher.submit(np.ones((10, 1, 2, 2)))
            small = batcher.submit(np.ones((1, 1, 2, 2)))
            big.result(timeout=30)
            small.result(timeout=30)
            stats = batcher.stats
        # the 10-sample request must not have been co-batched with anything
        assert stats.max_batch_samples == 10
        assert stats.batches == 2

    def test_exception_fans_out_to_every_cobatched_future(self):
        def explode(images):
            raise RuntimeError("mesh on fire")

        with DynamicBatcher(_StubProgram(explode), None, max_batch=8,
                            max_latency_s=0.2) as batcher:
            futures = [batcher.submit(np.ones((1, 1, 2, 2))) for _ in range(3)]
            for future in futures:
                with pytest.raises(RuntimeError, match="mesh on fire"):
                    future.result(timeout=30)

    def test_cancelled_future_is_skipped(self):
        release, entered = threading.Event(), threading.Event()

        def blocked(images):
            entered.set()
            release.wait(10)
            return _identity_logits(images)

        with DynamicBatcher(_StubProgram(blocked), None, max_batch=1) as batcher:
            first = batcher.submit(np.ones((1, 1, 2, 2)))
            assert entered.wait(10)              # worker is executing the first
            doomed = batcher.submit(np.ones((1, 1, 2, 2)))
            kept = batcher.submit(np.ones((1, 1, 2, 2)))
            assert doomed.cancel()               # still queued, so cancellable
            release.set()
            first.result(timeout=30)
            kept.result(timeout=30)
            assert doomed.cancelled()
            stats = batcher.stats
        # the cancelled request never reached the program
        assert stats.requests == 2

    def test_close_drains_queued_requests(self):
        release, entered = threading.Event(), threading.Event()

        def blocked(images):
            entered.set()
            release.wait(10)
            return _identity_logits(images)

        batcher = DynamicBatcher(_StubProgram(blocked), None, max_batch=1)
        first = batcher.submit(np.ones((1, 1, 2, 2)))
        assert entered.wait(10)
        queued = [batcher.submit(np.ones((1, 1, 2, 2))) for _ in range(3)]
        # close with the worker still blocked: it must report a failed join,
        # then drain the queue and join once the program unblocks
        assert batcher.close(timeout=0.05) is False
        release.set()
        assert batcher.close() is True
        for future in [first, *queued]:
            assert future.result(timeout=1) is not None

    def test_stats_snapshot_is_decoupled(self):
        with DynamicBatcher(_StubProgram(_identity_logits), None,
                            max_latency_s=0.001) as batcher:
            batcher.submit(np.ones((2, 1, 2, 2))).result(timeout=30)
            snapshot = batcher.stats
            snapshot.requests = 10_000           # mutating the copy is harmless
            assert batcher.stats.requests == 1
            assert batcher.stats.as_dict()["samples"] == 2


class TestProgramCache:
    def test_hit_returns_same_program(self, rng):
        model = tiny_lenet(rng)
        cache = ProgramCache(capacity=4)
        first = cache.get_or_compile("lenet", model)
        second = cache.get_or_compile("lenet", model)
        assert first is second
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_distinct_policies_get_distinct_entries(self, rng):
        model = tiny_lenet(rng)
        cache = ProgramCache(capacity=4)
        auto = cache.get_or_compile("lenet", model)
        column = cache.get_or_compile("lenet", model,
                                      options=CompileOptions(backend="column"))
        reck = cache.get_or_compile("lenet", model,
                                    target=HardwareTarget(method="reck"))
        assert auto is not column and auto is not reck
        assert len(cache) == 3

    def test_lru_eviction(self, rng):
        cache = ProgramCache(capacity=2)
        models = {key: ComplexFCNN(8, (6,), 3, decoder="merge", rng=rng)
                  for key in ("a", "b", "c")}
        cache.get_or_compile("a", models["a"])
        cache.get_or_compile("b", models["b"])
        cache.get_or_compile("a", models["a"])       # refresh "a"
        cache.get_or_compile("c", models["c"])       # evicts "b"
        assert cache.stats.evictions == 1
        assert cache.get("b") is None
        assert cache.get("a") is not None

    def test_factory_only_called_on_miss(self, rng):
        calls = []

        def factory():
            calls.append(1)
            return ComplexFCNN(8, (6,), 3, decoder="merge", rng=rng)

        cache = ProgramCache(capacity=2)
        cache.get_or_compile("fcnn", factory)
        cache.get_or_compile("fcnn", factory)
        assert len(calls) == 1

    def test_concurrent_misses_compile_once(self, rng):
        import time

        calls = []

        def slow_factory():
            calls.append(1)
            time.sleep(0.05)
            return ComplexFCNN(8, (6,), 3, decoder="merge", rng=rng)

        cache = ProgramCache(capacity=2)
        programs = [None] * 4

        def deploy(worker):
            programs[worker] = cache.get_or_compile("fcnn", slow_factory)

        threads = [threading.Thread(target=deploy, args=(w,)) for w in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(calls) == 1                      # single-flight compile
        assert all(program is programs[0] for program in programs)

    def test_failed_compile_releases_the_key(self, rng):
        cache = ProgramCache(capacity=2)

        def broken_factory():
            raise RuntimeError("boom")

        with pytest.raises(RuntimeError, match="boom"):
            cache.get_or_compile("fcnn", broken_factory)
        # the in-flight marker must be gone so a later deploy can succeed
        program = cache.get_or_compile(
            "fcnn", ComplexFCNN(8, (6,), 3, decoder="merge", rng=rng))
        assert program is not None

    def test_miss_without_model_raises(self):
        with pytest.raises(KeyError):
            ProgramCache().get_or_compile("ghost")

    def test_noise_targets_key_by_identity(self):
        noise = PhaseNoiseModel.seeded(0.01, seed=0)
        with_noise = HardwareTarget(noise=noise, trials=2)
        assert cache_key("m", with_noise) == cache_key("m", with_noise)
        other = HardwareTarget(noise=PhaseNoiseModel.seeded(0.01, seed=0), trials=2)
        assert cache_key("m", with_noise) != cache_key("m", other)

    def test_cached_program_plan_is_warm(self, rng):
        cache = ProgramCache()
        program = cache.get_or_compile("lenet", tiny_lenet(rng))
        assert program.graph._plan is not None

    def test_invalidate_drops_one_entry(self, rng):
        cache = ProgramCache(capacity=4)
        stale = cache.get_or_compile("lenet", tiny_lenet(rng))
        assert cache.invalidate("lenet") is True
        assert cache.invalidate("lenet") is False      # already gone
        fresh = cache.get_or_compile("lenet", tiny_lenet(rng))
        assert fresh is not stale


class TestInferenceService:
    def test_deploy_and_classify(self, rng):
        model = tiny_lenet(rng)
        scheme = get_scheme("CL")
        images = rng.normal(size=(3, 3, 12, 12))
        expected = repro.compile(model).predict_logits(images, scheme)
        with PhotonicInferenceService(max_latency_s=0.001) as service:
            program = service.deploy("lenet", model, scheme)
            assert service.deploy("lenet", model, scheme) is program  # cache hit
            logits = service.logits("lenet", images)
            labels = service.classify("lenet", images)
        assert np.allclose(logits, expected, atol=1e-10)
        assert np.array_equal(labels, expected.argmax(axis=-1))

    def test_unknown_model_rejected(self, rng):
        with PhotonicInferenceService() as service:
            with pytest.raises(KeyError, match="deploy"):
                service.classify("ghost", rng.normal(size=(1, 3, 12, 12)))

    def test_stats_shape(self, rng):
        with PhotonicInferenceService(max_latency_s=0.001) as service:
            service.deploy("lenet", tiny_lenet(rng), get_scheme("CL"))
            service.classify("lenet", np.zeros((1, 3, 12, 12)))
            stats = service.stats()
        assert stats["cache"]["misses"] == 1
        assert stats["models"]["lenet"]["requests"] == 1

    def test_closed_service_rejects_deploys(self, rng):
        service = PhotonicInferenceService()
        assert service.close() is True
        with pytest.raises(RuntimeError, match="closed"):
            service.deploy("lenet", tiny_lenet(rng), get_scheme("CL"))

    def test_refresh_redeploy_serves_updated_weights(self, rng):
        model = tiny_lenet(rng)
        scheme = get_scheme("CL")
        images = rng.normal(size=(2, 3, 12, 12))
        with PhotonicInferenceService(max_latency_s=0.001) as service:
            service.deploy("lenet", model, scheme)
            before = service.logits("lenet", images)
            state = {name: value * 0.5 for name, value in model.state_dict().items()}
            model.load_state_dict(state)
            # a plain redeploy hits the stale cache entry; refresh recompiles
            assert service.deploy("lenet", model, scheme) is not \
                service.deploy("lenet", model, scheme, refresh=True)
            after = service.logits("lenet", images)
        assert not np.allclose(before, after)
        assert np.allclose(after, repro.compile(model).predict_logits(images, scheme),
                           atol=1e-10)


class TestServingBenchmarkHarness:
    def test_benchmark_reports_consistent_counts(self, rng):
        program = repro.compile(ComplexFCNN(18, (10,), 4, decoder="merge", rng=rng))
        row = run_serving_benchmark(program, get_scheme("SI"),
                                    image_shape=(1, 6, 6), requests=12,
                                    clients=3, max_batch=8, max_latency_s=0.005)
        assert row.batcher["requests"] == 12
        assert row.batcher["samples"] == 12
        assert row.sequential_requests_per_s > 0
        assert row.batched_requests_per_s > 0
