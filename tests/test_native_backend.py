"""Tests of the native ``cchain`` backend (:mod:`repro.photonics._native`).

The compiled rotation-chain kernel is an optional accelerator behind the
existing backend seam: every test here either pins its output against the
pure-numpy reference paths (``reference_apply``, forced-reference
decomposition) to 1e-10, or verifies the degradation contract -- no C
toolchain, or ``REPRO_FORCE_REFERENCE=1``, must silently select the numpy
paths with identical results.
"""

from __future__ import annotations

import logging

import numpy as np
import pytest

from repro.photonics import _native, engine, mzi_mesh
from repro.photonics.mzi_mesh import (
    MeshDecomposition,
    clements_decompose,
    clements_decompose_stack,
    reck_decompose,
)
from repro.photonics.svd_mapping import chain_backend, stack_threshold, svd_decompose

requires_kernel = pytest.mark.skipif(
    _native.kernel() is None,
    reason=f"native kernel unavailable: {_native.load_error()}")

PARITY = 1e-10


def random_unitary(dim: int, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    gaussian = rng.normal(size=(dim, dim)) + 1j * rng.normal(size=(dim, dim))
    q, r = np.linalg.qr(gaussian)
    return q * (np.diagonal(r) / np.abs(np.diagonal(r)))


def random_states(batch: int, dim: int, seed: int = 1) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.normal(size=(batch, dim)) + 1j * rng.normal(size=(batch, dim))


@pytest.fixture
def no_native(monkeypatch, tmp_path):
    """Simulate a machine with no C toolchain (and no cached build)."""
    monkeypatch.setenv("REPRO_NATIVE_CC", str(tmp_path / "missing-cc"))
    monkeypatch.setenv("REPRO_NATIVE_CACHE", str(tmp_path / "native-cache"))
    monkeypatch.delenv("REPRO_FORCE_REFERENCE", raising=False)
    _native.reset()
    yield
    _native.reset()      # next kernel() call re-probes under the real env


class TestPropagateParity:
    @requires_kernel
    @pytest.mark.parametrize("dim", [2, 3, 5, 8, 13, 16])
    @pytest.mark.parametrize("decompose", [clements_decompose, reck_decompose])
    def test_matches_reference_walk_odd_and_even_dims(self, dim, decompose):
        mesh = decompose(random_unitary(dim, seed=dim))
        mesh.backend = "cchain"
        assert mesh.resolve_backend() == "cchain"
        states = random_states(4, dim, seed=dim + 1)
        expected = np.stack([
            engine.reference_apply(mesh.modes, mesh.thetas, mesh.phis,
                                   mesh.output_phases, row)
            for row in states])
        assert np.abs(mesh.apply(states) - expected).max() <= PARITY

    @requires_kernel
    def test_single_vector_and_insertion_loss(self):
        mesh = clements_decompose(random_unitary(6, seed=3))
        mesh.backend = "cchain"
        state = random_states(1, 6, seed=4)[0]
        for loss_db in (0.0, 0.5):
            expected = engine.reference_apply(mesh.modes, mesh.thetas,
                                              mesh.phis, mesh.output_phases,
                                              state, insertion_loss_db=loss_db)
            got = mesh.apply(state, insertion_loss_db=loss_db)
            assert got.shape == (6,)
            assert np.abs(got - expected).max() <= PARITY

    @requires_kernel
    def test_does_not_mutate_the_input(self):
        mesh = clements_decompose(random_unitary(5, seed=9))
        mesh.backend = "cchain"
        states = random_states(3, 5)
        before = states.copy()
        mesh.apply(states)
        np.testing.assert_array_equal(states, before)


class TestDecompositionChainParity:
    @requires_kernel
    @pytest.mark.parametrize("dim", [3, 4, 7, 10])
    def test_single_matrix_chain_matches_forced_reference(self, dim, monkeypatch):
        unitary = random_unitary(dim, seed=20 + dim)
        native = clements_decompose(unitary)
        monkeypatch.setenv("REPRO_FORCE_REFERENCE", "1")
        reference = clements_decompose(unitary)
        assert np.abs(native.thetas - reference.thetas).max() <= PARITY
        assert np.abs(native.phis - reference.phis).max() <= PARITY
        assert np.abs(native.output_phases
                      - reference.output_phases).max() <= PARITY
        assert np.abs(native.reconstruct() - unitary).max() <= PARITY

    @requires_kernel
    def test_stacked_chains_match_forced_reference(self, monkeypatch):
        stack = np.stack([random_unitary(6, seed=s) for s in range(4)])
        native = clements_decompose_stack(stack)
        monkeypatch.setenv("REPRO_FORCE_REFERENCE", "1")
        reference = clements_decompose_stack(stack)
        for mesh_native, mesh_reference, unitary in zip(native, reference, stack):
            assert np.abs(mesh_native.thetas
                          - mesh_reference.thetas).max() <= PARITY
            assert np.abs(mesh_native.phis
                          - mesh_reference.phis).max() <= PARITY
            assert np.abs(mesh_native.reconstruct() - unitary).max() <= PARITY


class TestSvdFactors:
    @requires_kernel
    @pytest.mark.parametrize("shape", [(7, 4), (4, 9), (5, 5), (1, 6)])
    def test_nonsquare_factors_match_column_backend(self, shape):
        rng = np.random.default_rng(sum(shape))
        weight = rng.normal(size=shape) + 1j * rng.normal(size=shape)
        native = svd_decompose(weight, backend="cchain")
        column = svd_decompose(weight, backend="column")
        states = random_states(3, shape[1], seed=2)
        assert np.abs(native.apply(states) - column.apply(states)).max() <= PARITY
        # and both agree with the plain matmul the SVD factors encode
        assert np.abs(native.apply(states) - states @ weight.T).max() <= 1e-8

    @requires_kernel
    def test_auto_policy_prefers_cchain_above_the_dense_limit(self):
        rng = np.random.default_rng(5)
        weight = rng.normal(size=(6, 6))
        matrix = svd_decompose(weight, backend="auto", dense_dimension_limit=2)
        assert matrix.left_mesh.resolve_backend() == "cchain"
        assert matrix.right_mesh.resolve_backend() == "cchain"
        # below the limit the dense matmul still wins
        dense = svd_decompose(weight, backend="auto", dense_dimension_limit=64)
        assert dense.left_mesh.resolve_backend() == "dense"


class TestDegradation:
    def test_no_toolchain_silently_selects_numpy(self, no_native, caplog):
        unitary = random_unitary(5, seed=40)
        with caplog.at_level(logging.WARNING):
            assert _native.kernel() is None
            assert chain_backend() == "numpy"
            assert stack_threshold("clements") == 3      # numpy threshold
            mesh = clements_decompose(unitary)
            mesh.dense_dimension_limit = 2
            assert mesh.resolve_backend() == "column"    # auto, no warning
            assert np.abs(mesh.reconstruct() - unitary).max() <= PARITY
        assert not caplog.records                        # silent degradation
        assert "missing-cc" in (_native.load_error() or "")

    def test_forced_cchain_without_toolchain_warns_and_falls_back(
            self, no_native, caplog, monkeypatch):
        monkeypatch.setattr(mzi_mesh, "_NATIVE_FALLBACK_LOGGED", False)
        mesh = clements_decompose(random_unitary(4, seed=41))
        mesh.backend = "cchain"
        with caplog.at_level(logging.WARNING, logger="repro.photonics.mzi_mesh"):
            assert mesh.resolve_backend() == "column"
            assert mesh.resolve_backend() == "column"
        fallback_logs = [record for record in caplog.records
                         if "cchain" in record.getMessage()]
        assert len(fallback_logs) == 1                   # once per process

    def test_force_reference_env_gates_the_kernel(self, monkeypatch):
        monkeypatch.setenv("REPRO_FORCE_REFERENCE", "1")
        assert engine.native_kernel() is None
        assert chain_backend() == "numpy"
        monkeypatch.delenv("REPRO_FORCE_REFERENCE")
        # the gate is re-read per call: lifting it restores the kernel
        # without any module reload (when a toolchain exists at all)
        kernel = engine.native_kernel()
        assert (kernel is not None) == (_native.load_error() is None)


class TestCompileEndToEnd:
    @requires_kernel
    def test_cchain_program_matches_column_program(self):
        from repro.assignment import get_scheme
        from repro.core.compile import CompileOptions
        from repro.core.compile import compile as compile_model
        from repro.models import ComplexFCNN

        model = ComplexFCNN(8, (6,), 3, decoder="merge",
                            rng=np.random.default_rng(0))
        images = np.random.default_rng(42).normal(size=(5, 1, 4, 4))
        scheme = get_scheme("SI")
        native = compile_model(model, options=CompileOptions(backend="cchain"))
        column = compile_model(model, options=CompileOptions(backend="column"))
        assert np.abs(native.predict_logits(images, scheme)
                      - column.predict_logits(images, scheme)).max() <= PARITY

    @requires_kernel
    def test_trials_batched_meshes_stay_on_numpy(self):
        from repro.photonics.noise import PhaseNoiseModel

        mesh = clements_decompose(random_unitary(6, seed=50))
        noisy = PhaseNoiseModel.seeded(0.01).perturb(mesh, trials=3)
        assert noisy.is_batched
        noisy.backend = "cchain"
        # the ensemble path is vectorized numpy by design; forcing cchain on
        # a batched mesh quietly resolves to the column program
        assert noisy.resolve_backend() == "column"
        states = random_states(2, 6)
        assert noisy.apply(states).shape == (3, 2, 6)
