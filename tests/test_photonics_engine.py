"""Property tests: the compiled mesh engine must match the per-MZI walk.

:func:`repro.photonics.engine.reference_apply` is the seed per-MZI Python
loop, kept as an executable specification.  Every compiled path -- the column
program, the cached dense transfer matrix, the trials-batched noise ensembles
-- is pinned against it to 1e-10 here, for both mesh topologies, with and
without insertion loss, phase noise and quantization.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.photonics import (
    MeshDecomposition,
    MZISetting,
    PhaseNoiseModel,
    clements_decompose,
    column_schedule,
    mzi_block_coefficients,
    mzi_transfer,
    quantize_phases,
    random_unitary,
    reck_decompose,
    reference_apply,
)
from repro.photonics import engine


DECOMPOSERS = {"reck": reck_decompose, "clements": clements_decompose}


def reference_output(mesh, states, insertion_loss_db=0.0):
    return reference_apply(mesh.modes, mesh.thetas, mesh.phis, mesh.output_phases,
                           states, insertion_loss_db=insertion_loss_db)


def random_batch(rng, batch, dim):
    return rng.normal(size=(batch, dim)) + 1j * rng.normal(size=(batch, dim))


class TestBlockCoefficients:
    @given(st.floats(-10.0, 10.0), st.floats(-10.0, 10.0))
    @settings(max_examples=50, deadline=None)
    def test_closed_form_matches_component_product(self, theta, phi):
        t00, t01, t10, t11 = mzi_block_coefficients(np.array([theta]), np.array([phi]))
        expected = mzi_transfer(theta, phi)
        block = np.array([[t00[0], t01[0]], [t10[0], t11[0]]])
        assert np.abs(block - expected).max() < 1e-12

    def test_transmission_scales_every_entry(self, rng):
        thetas, phis = rng.uniform(0, 2 * np.pi, size=(2, 5))
        lossless = mzi_block_coefficients(thetas, phis)
        lossy = mzi_block_coefficients(thetas, phis, transmission=0.5)
        for full, scaled in zip(lossless, lossy):
            assert np.allclose(scaled, 0.5 * full)


class TestColumnSchedule:
    def test_columns_have_disjoint_modes(self, rng):
        mesh = clements_decompose(random_unitary(9, rng))
        program = column_schedule(mesh.modes, mesh.dimension)
        for _indices, tops, bottoms in program.columns:
            touched = np.concatenate([tops, bottoms])
            assert len(set(touched.tolist())) == touched.size

    def test_per_mode_order_is_preserved(self, rng):
        mesh = reck_decompose(random_unitary(7, rng))
        program = column_schedule(mesh.modes, mesh.dimension)
        column_of = np.empty(mesh.mzi_count, dtype=int)
        for column, (indices, _tops, _bottoms) in enumerate(program.columns):
            column_of[indices] = column
        for i in range(mesh.mzi_count):
            for j in range(i + 1, mesh.mzi_count):
                modes_i = {int(mesh.modes[i]), int(mesh.modes[i]) + 1}
                modes_j = {int(mesh.modes[j]), int(mesh.modes[j]) + 1}
                if modes_i & modes_j:
                    assert column_of[i] < column_of[j]

    def test_clements_depth_is_about_n(self, rng):
        dimension = 10
        mesh = clements_decompose(random_unitary(dimension, rng))
        assert mesh.optical_depth <= dimension
        reck = reck_decompose(random_unitary(dimension, rng))
        assert reck.optical_depth == 2 * dimension - 3

    def test_empty_mesh(self):
        program = column_schedule(np.array([], dtype=np.intp), 4)
        assert program.depth == 0


class TestStridedColumnSlices:
    """Arithmetic column patterns must compile to strided-slice gathers."""

    def test_as_slice_detects_arithmetic_progressions(self):
        assert engine.as_slice(np.array([], dtype=np.intp)) is None
        assert engine.as_slice(np.array([3])) == (3, 4, 1)
        assert engine.as_slice(np.array([0, 2, 4, 6])) == (0, 7, 2)
        assert engine.as_slice(np.array([1, 4, 7])) == (1, 8, 3)
        assert engine.as_slice(np.array([0, 2, 3])) is None
        assert engine.as_slice(np.array([4, 2, 0])) is None

    def test_slice_spec_selects_the_same_modes(self, rng):
        for method, decompose in DECOMPOSERS.items():
            mesh = decompose(random_unitary(9, rng))
            program = mesh.compiled()
            assert len(program.column_slices) == program.depth
            for (indices, tops, _bottoms), (mode_slice, index_slice) in zip(
                    program.columns, program.column_slices):
                if mode_slice is not None:
                    start, stop, step = mode_slice
                    assert np.array_equal(np.arange(start, stop, step), tops), method
                if index_slice is not None:
                    start, stop, step = index_slice
                    assert np.array_equal(np.arange(start, stop, step), indices), method

    @pytest.mark.parametrize("method", ["reck", "clements"])
    def test_stride2_patterns_become_slices(self, method, rng):
        # the half-empty Reck columns the ROADMAP called out, and the full
        # stride-2 Clements columns, must all take the strided-view path
        mesh = DECOMPOSERS[method](random_unitary(10, rng))
        mode_slices = [mode_slice for mode_slice, _ in mesh.compiled().column_slices]
        assert all(mode_slice is not None for mode_slice in mode_slices)
        assert any(mode_slice[2] == 2 for mode_slice in mode_slices
                   if mode_slice[1] - mode_slice[0] > 1)

    def test_non_arithmetic_columns_fall_back_to_gathers(self, rng):
        # modes 0, 2, 5 are disjoint but not an arithmetic progression
        modes = np.array([0, 2, 5], dtype=np.intp)
        program = column_schedule(modes, 8)
        assert program.depth == 1
        assert program.column_slices[0][0] is None
        thetas = rng.uniform(0, 2 * np.pi, size=3)
        phis = rng.uniform(0, 2 * np.pi, size=3)
        output_phases = np.exp(1j * rng.uniform(0, 2 * np.pi, size=8))
        states = random_batch(rng, 4, 8)
        compiled = engine.propagate(program, states, thetas, phis, output_phases)
        reference = reference_apply(modes, thetas, phis, output_phases, states)
        assert np.abs(compiled - reference).max() < 1e-10


class TestPreallocatedBuffers:
    @pytest.mark.parametrize("method", ["reck", "clements"])
    def test_propagate_out_buffer_is_used_and_correct(self, method, rng):
        mesh = DECOMPOSERS[method](random_unitary(8, rng))
        program = mesh.compiled()
        states = random_batch(rng, 5, 8)
        expected = engine.propagate(program, states, mesh.thetas, mesh.phis,
                                    mesh.output_phases)
        out = np.empty((5, 8), dtype=complex)
        result = engine.propagate(program, states, mesh.thetas, mesh.phis,
                                  mesh.output_phases, out=out)
        assert result is out
        assert np.abs(result - expected).max() < 1e-12

    def test_propagate_out_may_alias_states(self, rng):
        mesh = clements_decompose(random_unitary(6, rng))
        states = random_batch(rng, 3, 6)
        expected = engine.propagate(mesh.compiled(), states, mesh.thetas,
                                    mesh.phis, mesh.output_phases)
        result = engine.propagate(mesh.compiled(), states, mesh.thetas,
                                  mesh.phis, mesh.output_phases, out=states)
        assert result is states
        assert np.abs(result - expected).max() < 1e-12

    def test_propagate_ignores_incompatible_out(self, rng):
        mesh = clements_decompose(random_unitary(6, rng))
        states = random_batch(rng, 3, 6)
        wrong = np.empty((2, 6), dtype=complex)
        result = engine.propagate(mesh.compiled(), states, mesh.thetas,
                                  mesh.phis, mesh.output_phases, out=wrong)
        assert result is not wrong
        assert result.shape == (3, 6)

    def test_apply_dense_out(self, rng):
        mesh = clements_decompose(random_unitary(7, rng))
        dense = mesh.reconstruct()
        states = random_batch(rng, 4, 7)
        out = np.empty((4, 7), dtype=complex)
        result = engine.apply_dense(states, dense, out=out)
        assert result is out
        assert np.abs(result - states @ dense.T).max() < 1e-12
        # incompatible buffers are ignored, not fatal
        bad = np.empty((4, 7), dtype=float)
        fallback = engine.apply_dense(states, dense, out=bad)
        assert fallback is not bad
        assert np.abs(fallback - states @ dense.T).max() < 1e-12


@pytest.mark.parametrize("method", ["reck", "clements"])
class TestCompiledPropagationMatchesReference:
    @pytest.mark.parametrize("dimension", [2, 3, 5, 8, 16, 33])
    def test_lossless(self, method, dimension, rng):
        mesh = DECOMPOSERS[method](random_unitary(dimension, rng))
        states = random_batch(rng, 6, dimension)
        assert np.abs(mesh.apply(states) - reference_output(mesh, states)).max() < 1e-10

    @pytest.mark.parametrize("loss_db", [0.1, 0.7])
    def test_with_insertion_loss(self, method, loss_db, rng):
        mesh = DECOMPOSERS[method](random_unitary(9, rng))
        states = random_batch(rng, 4, 9)
        compiled = mesh.apply(states, insertion_loss_db=loss_db)
        assert np.abs(compiled - reference_output(mesh, states, loss_db)).max() < 1e-10

    def test_with_phase_noise(self, method, rng):
        mesh = DECOMPOSERS[method](random_unitary(8, rng))
        noisy = PhaseNoiseModel(sigma=0.1, rng=rng).perturb(mesh)
        states = random_batch(rng, 5, 8)
        assert np.abs(noisy.apply(states) - reference_output(noisy, states)).max() < 1e-10

    def test_with_quantization(self, method, rng):
        mesh = DECOMPOSERS[method](random_unitary(8, rng))
        quantized = quantize_phases(mesh, 4)
        states = random_batch(rng, 5, 8)
        compiled = quantized.apply(states)
        assert np.abs(compiled - reference_output(quantized, states)).max() < 1e-10

    def test_column_program_path_matches_dense_path(self, method, rng):
        """Both engine paths agree (the dense cache is used below the limit)."""
        mesh = DECOMPOSERS[method](random_unitary(12, rng))
        states = random_batch(rng, 4, 12)
        direct = engine.propagate(mesh.compiled(), states, mesh.thetas, mesh.phis,
                                  mesh.output_phases)
        assert np.abs(mesh.apply(states) - direct).max() < 1e-10

    def test_reconstruct_matches_embed_product(self, method, rng):
        mesh = DECOMPOSERS[method](random_unitary(6, rng))
        expected = np.eye(6, dtype=complex)
        for setting in mesh.settings:
            expected = mesh.embed(setting) @ expected
        expected = np.diag(mesh.output_phases) @ expected
        assert np.abs(mesh.reconstruct() - expected).max() < 1e-10

    @given(st.integers(2, 8), st.integers(0, 2 ** 16))
    @settings(max_examples=25, deadline=None)
    def test_property_compiled_equals_reference(self, method, dimension, seed):
        rng = np.random.default_rng(seed)
        mesh = DECOMPOSERS[method](random_unitary(dimension, rng))
        states = random_batch(rng, 3, dimension)
        assert np.abs(mesh.apply(states) - reference_output(mesh, states)).max() < 1e-10


class TestTrialsAxis:
    def test_batched_perturb_matches_per_trial_meshes(self, rng):
        mesh = clements_decompose(random_unitary(7, rng))
        batched = PhaseNoiseModel(sigma=0.08, rng=rng).perturb(mesh, trials=6)
        states = random_batch(rng, 4, 7)
        ensemble = batched.apply(states)
        assert ensemble.shape == (6, 4, 7)
        for t in range(6):
            single = mesh.with_phases(thetas=batched.thetas[t], phis=batched.phis[t],
                                      output_phases=batched.output_phases[t])
            assert np.abs(ensemble[t] - reference_output(single, states)).max() < 1e-10

    def test_zero_sigma_trials_replicates_clean_mesh(self, rng):
        mesh = reck_decompose(random_unitary(5, rng))
        batched = PhaseNoiseModel(sigma=0.0).perturb(mesh, trials=3)
        states = random_batch(rng, 2, 5)
        ensemble = batched.apply(states)
        clean = mesh.apply(states)
        for t in range(3):
            assert np.allclose(ensemble[t], clean)

    def test_quantize_applies_to_every_trial(self, rng):
        mesh = reck_decompose(random_unitary(5, rng))
        batched = PhaseNoiseModel(sigma=0.2, rng=rng).perturb(mesh, trials=4)
        quantized = quantize_phases(batched, 5)
        step = 2.0 * np.pi / 2 ** 5
        remainder = np.mod(quantized.thetas, step)
        assert np.all(np.minimum(remainder, step - remainder) < 1e-9)
        assert quantized.trial_shape == (4,)

    def test_batched_reconstruct_stacks_per_trial_matrices(self, rng):
        mesh = clements_decompose(random_unitary(4, rng))
        batched = PhaseNoiseModel(sigma=0.05, rng=rng).perturb(mesh, trials=3)
        stacked = batched.reconstruct()
        assert stacked.shape == (3, 4, 4)
        for t in range(3):
            single = mesh.with_phases(thetas=batched.thetas[t], phis=batched.phis[t],
                                      output_phases=batched.output_phases[t])
            assert np.abs(stacked[t] - single.reconstruct()).max() < 1e-10

    def test_trials_axis_input_broadcasts_per_trial(self, rng):
        mesh = clements_decompose(random_unitary(5, rng))
        batched = PhaseNoiseModel(sigma=0.05, rng=rng).perturb(mesh, trials=3)
        per_trial_inputs = (rng.normal(size=(3, 2, 5))
                            + 1j * rng.normal(size=(3, 2, 5)))
        outputs = batched.apply(per_trial_inputs)
        for t in range(3):
            single = mesh.with_phases(thetas=batched.thetas[t], phis=batched.phis[t],
                                      output_phases=batched.output_phases[t])
            assert np.abs(outputs[t] - single.apply(per_trial_inputs[t])).max() < 1e-10

    def test_perturbing_batched_mesh_with_trials_rejected(self, rng):
        mesh = reck_decompose(random_unitary(4, rng))
        model = PhaseNoiseModel(sigma=0.1, rng=rng)
        batched = model.perturb(mesh, trials=2)
        with pytest.raises(ValueError):
            model.perturb(batched, trials=2)

    def test_invalid_trials_rejected(self, rng):
        mesh = reck_decompose(random_unitary(4, rng))
        with pytest.raises(ValueError):
            PhaseNoiseModel(sigma=0.1, rng=rng).perturb(mesh, trials=0)

    def test_settings_view_unavailable_on_batched_mesh(self, rng):
        mesh = reck_decompose(random_unitary(4, rng))
        batched = PhaseNoiseModel(sigma=0.1, rng=rng).perturb(mesh, trials=2)
        with pytest.raises(ValueError):
            batched.settings


class TestSoAStorageAndCaching:
    def test_settings_view_round_trips(self, rng):
        mesh = clements_decompose(random_unitary(5, rng))
        rebuilt = MeshDecomposition(dimension=5, settings=mesh.settings,
                                    output_phases=mesh.output_phases,
                                    method=mesh.method)
        assert np.allclose(rebuilt.reconstruct(), mesh.reconstruct())
        assert all(isinstance(s, MZISetting) for s in mesh.settings)

    def test_phase_arrays_are_read_only(self, rng):
        mesh = reck_decompose(random_unitary(4, rng))
        with pytest.raises(ValueError):
            mesh.thetas[0] = 1.0
        with pytest.raises(ValueError):
            mesh.output_phases[0] = 1.0

    def test_update_phases_invalidates_dense_cache(self, rng):
        unitary = random_unitary(5, rng)
        mesh = clements_decompose(unitary)
        states = random_batch(rng, 3, 5)
        before = mesh.apply(states)          # populates the dense cache
        mesh.update_phases(thetas=mesh.thetas + 0.3)
        after = mesh.apply(states)
        fresh = MeshDecomposition(dimension=5, modes=mesh.modes, thetas=mesh.thetas,
                                  phis=mesh.phis, output_phases=mesh.output_phases,
                                  method=mesh.method)
        assert not np.allclose(before, after)
        assert np.abs(after - fresh.apply(states)).max() < 1e-10

    def test_with_phases_shares_topology_but_not_caches(self, rng):
        mesh = clements_decompose(random_unitary(5, rng))
        shifted = mesh.with_phases(phis=mesh.phis + 0.1)
        assert shifted.modes is mesh.modes
        assert not np.allclose(shifted.reconstruct(), mesh.reconstruct())

    def test_vectorized_power_matches_per_shifter_sum(self, rng):
        from repro.photonics.components import phase_shifter_power_mw

        mesh = reck_decompose(random_unitary(6, rng))
        expected = 0.0
        for setting in mesh.settings:
            expected += phase_shifter_power_mw(setting.theta)
            expected += phase_shifter_power_mw(setting.phi)
        for phase in np.angle(mesh.output_phases):
            expected += phase_shifter_power_mw(float(phase))
        assert mesh.total_phase_power_mw() == pytest.approx(expected, rel=1e-12)

    def test_batched_power_is_per_trial(self, rng):
        mesh = reck_decompose(random_unitary(5, rng))
        batched = PhaseNoiseModel(sigma=0.1, rng=rng).perturb(mesh, trials=4)
        power = batched.total_phase_power_mw()
        assert power.shape == (4,)
        assert np.isfinite(power).all()

    def test_mixing_settings_and_arrays_rejected(self):
        with pytest.raises(ValueError):
            MeshDecomposition(dimension=3, settings=[MZISetting(0, 0.1, 0.2)],
                              thetas=np.array([0.1]))


class TestDeployedEnsembles:
    def test_deployed_noise_ensemble_matches_sequential_draws(self, rng):
        """A trials-batched deployed model equals T seeded sequential copies."""
        from repro.assignment import get_scheme
        from repro.core.deploy import deploy_linear_model
        from repro.models import ComplexFCNN

        scheme = get_scheme("SI")
        model = ComplexFCNN(8, (6,), 2, decoder="merge", rng=rng)
        deployed = deploy_linear_model(model)
        images = rng.normal(size=(3, 1, 4, 4))
        trials = 4
        noisy = deployed.with_noise(noise=PhaseNoiseModel(sigma=0.05,
                                                          rng=np.random.default_rng(11)),
                                    trials=trials)
        logits = noisy.predict_logits(images, scheme)
        assert logits.shape == (trials, 3, 2)
        assert np.isfinite(logits).all()
        predictions = noisy.classify(images, scheme)
        assert predictions.shape == (trials, 3)

    def test_zero_sigma_ensemble_matches_clean_model(self, rng):
        from repro.assignment import get_scheme
        from repro.core.deploy import deploy_linear_model
        from repro.models import ComplexFCNN

        scheme = get_scheme("SI")
        model = ComplexFCNN(8, (6,), 2, decoder="merge", rng=rng)
        deployed = deploy_linear_model(model)
        images = rng.normal(size=(3, 1, 4, 4))
        clean = deployed.predict_logits(images, scheme)
        ensemble = deployed.with_noise(noise=PhaseNoiseModel(sigma=0.0),
                                       trials=3).predict_logits(images, scheme)
        for t in range(3):
            assert np.allclose(ensemble[t], clean)

    def test_trials_without_noise_model_rejected(self, rng):
        from repro.core.deploy import deploy_linear_model
        from repro.models import ComplexFCNN

        model = ComplexFCNN(8, (6,), 2, decoder="merge", rng=rng)
        deployed = deploy_linear_model(model)
        with pytest.raises(ValueError):
            deployed.with_noise(quantization_bits=6, trials=3)


class TestSigmaAxisEnsembles:
    """Array sigmas fold a whole sigma sweep into the trials ensemble."""

    def test_sigma_axis_shapes(self, rng):
        mesh = clements_decompose(random_unitary(6, rng))
        noise = PhaseNoiseModel(sigma=np.array([0.0, 0.02, 0.1]), rng=rng)
        batched = noise.perturb(mesh, trials=4)
        assert batched.trial_shape == (3, 4)
        states = rng.normal(size=(2, 6)) + 1j * rng.normal(size=(2, 6))
        assert batched.apply(states).shape == (3, 4, 2, 6)

    def test_sigma_axis_without_trials(self, rng):
        mesh = clements_decompose(random_unitary(5, rng))
        noise = PhaseNoiseModel(sigma=np.array([0.01, 0.3]), rng=rng)
        batched = noise.perturb(mesh)
        assert batched.trial_shape == (2,)

    def test_zero_sigma_slice_is_clean(self, rng):
        mesh = clements_decompose(random_unitary(6, rng))
        noise = PhaseNoiseModel(sigma=np.array([0.0, 0.05]), rng=rng)
        batched = noise.perturb(mesh, trials=3)
        assert np.allclose(batched.thetas[0], np.broadcast_to(mesh.thetas, (3, mesh.mzi_count)))
        assert np.allclose(batched.output_phases[0],
                           np.broadcast_to(mesh.output_phases, (3, 6)))

    def test_common_random_numbers_across_sigmas(self, rng):
        """Sigma slices share standard-normal draws, scaled per sigma."""
        mesh = clements_decompose(random_unitary(5, rng))
        noise = PhaseNoiseModel(sigma=np.array([0.01, 0.1]), rng=np.random.default_rng(5))
        batched = noise.perturb(mesh, trials=2)
        small = batched.thetas[0] - mesh.thetas
        large = batched.thetas[1] - mesh.thetas
        assert np.allclose(large, 10.0 * small)

    def test_negative_sigma_entry_rejected(self, rng):
        mesh = clements_decompose(random_unitary(4, rng))
        with pytest.raises(ValueError):
            PhaseNoiseModel(sigma=np.array([0.1, -0.1]), rng=rng).perturb(mesh)

    def test_scalar_stream_unchanged_by_refactor(self, rng):
        """Scalar sigma draws the exact historical scaled-normal stream."""
        mesh = clements_decompose(random_unitary(5, rng))
        noisy = PhaseNoiseModel(sigma=0.05, rng=np.random.default_rng(11)).perturb(mesh)
        reference = np.random.default_rng(11)
        mzi_errors = reference.normal(0.0, 0.05, size=(mesh.mzi_count, 2))
        phase_errors = reference.normal(0.0, 0.05, size=(5,))
        assert np.allclose(noisy.thetas, mesh.thetas + mzi_errors[:, 0], atol=1e-15)
        assert np.allclose(noisy.phis, mesh.phis + mzi_errors[:, 1], atol=1e-15)
        assert np.allclose(noisy.output_phases,
                           mesh.output_phases * np.exp(1j * phase_errors), atol=1e-15)


class TestAdaptiveDenseLimit:
    def test_set_dense_dimension_limit_round_trips(self):
        previous = engine.set_dense_dimension_limit(12)
        try:
            assert engine.DENSE_DIMENSION_LIMIT == 12
        finally:
            engine.set_dense_dimension_limit(previous)
        assert engine.DENSE_DIMENSION_LIMIT == previous

    def test_measure_dense_crossover_rows(self):
        rows = engine.measure_dense_crossover(dimensions=(4, 8), batch=4, repeats=1)
        assert [row["dimension"] for row in rows] == [4, 8]
        for row in rows:
            assert row["dense_seconds"] > 0 and row["column_seconds"] > 0
            assert row["dense_speedup"] == row["column_seconds"] / row["dense_seconds"]

    def test_calibrate_limit_is_a_measured_dimension_or_disabled(self):
        limit, rows = engine.calibrate_dense_limit(dimensions=(4, 8), batch=4, repeats=1)
        # 0 disables the dense path on machines where it never wins
        assert limit in {row["dimension"] for row in rows} | {0}
