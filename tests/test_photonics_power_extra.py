"""Additional coverage: power accounting, area summaries and reporting helpers."""

import numpy as np
import pytest

from repro.core.area_analysis import model_area_report
from repro.experiments.reporting import format_table, save_json
from repro.models import ComplexFCNN
from repro.photonics import MZI, random_unitary, reck_decompose, svd_decompose
from repro.photonics.components import MAX_PHASE_SHIFTER_POWER_MW, phase_shifter_power_mw


class TestPowerAccounting:
    def test_single_mzi_power_range(self):
        assert MZI(0.0, 0.0).power_mw() == 0.0
        assert MZI(np.pi, np.pi).power_mw() == pytest.approx(MAX_PHASE_SHIFTER_POWER_MW)
        assert MZI(2 * np.pi - 1e-9, 0.0).power_mw() == pytest.approx(
            MAX_PHASE_SHIFTER_POWER_MW, rel=1e-6)

    def test_phase_power_is_non_negative_everywhere(self, rng):
        for angle in rng.uniform(-20, 20, size=50):
            assert phase_shifter_power_mw(float(angle)) >= 0.0

    def test_deployed_matrix_power_scales_with_size(self, rng):
        small = svd_decompose(rng.normal(size=(4, 4)))
        large = svd_decompose(rng.normal(size=(16, 16)))
        small_power = small.left_mesh.total_phase_power_mw() + small.right_mesh.total_phase_power_mw()
        large_power = large.left_mesh.total_phase_power_mw() + large.right_mesh.total_phase_power_mw()
        assert large_power > small_power

    def test_split_network_uses_less_power_than_conventional(self, rng):
        """Fewer MZIs -> lower static heater power (an implicit claim of the paper)."""
        conventional = svd_decompose(rng.normal(size=(16, 32)))
        split = svd_decompose(rng.normal(size=(8, 16)) + 1j * rng.normal(size=(8, 16)))
        power = lambda pm: (pm.left_mesh.total_phase_power_mw()          # noqa: E731
                            + pm.right_mesh.total_phase_power_mw())
        assert power(split) < power(conventional)


class TestAreaSummaries:
    def test_summary_lists_every_layer_and_total(self, rng):
        model = ComplexFCNN(12, (8, 6), 3, decoder="merge", rng=rng)
        report = model_area_report(model)
        summary = report.summary()
        assert summary.count("\n") >= len(report.layers)
        assert "TOTAL" in summary
        assert str(report.total_mzis) in summary

    def test_total_directional_couplers_and_phase_shifters(self, rng):
        model = ComplexFCNN(10, (6,), 2, decoder="merge", rng=rng)
        report = model_area_report(model)
        assert report.total_directional_couplers == 2 * report.total_mzis
        assert report.total_phase_shifters == report.total_mzis


class TestReportingExtra:
    def test_save_json_accepts_plain_dict(self, tmp_path):
        path = save_json({"answer": 42, "array": np.arange(3)}, tmp_path / "out.json")
        assert path.exists()
        assert "42" in path.read_text()

    def test_format_table_handles_mixed_types(self):
        text = format_table(["a", "b"], [[1, 0.123456], ["long-string", None]])
        assert "long-string" in text
        assert "0.1235" in text
