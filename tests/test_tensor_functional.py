"""Tests of the neural-network primitives (conv, pooling, softmax, dropout)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from scipy import signal as scipy_signal

from repro.tensor import Tensor, functional as F, gradcheck
from repro.tensor.functional import col2im, im2col


def reference_conv2d(inputs, weight, bias, stride, padding):
    """Naive cross-correlation used as the ground truth."""
    batch, _in_c, height, width = inputs.shape
    out_c, in_c, kh, kw = weight.shape
    padded = np.pad(inputs, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    out_h = (height + 2 * padding - kh) // stride + 1
    out_w = (width + 2 * padding - kw) // stride + 1
    output = np.zeros((batch, out_c, out_h, out_w))
    for b in range(batch):
        for o in range(out_c):
            for i in range(out_h):
                for j in range(out_w):
                    patch = padded[b, :, i * stride:i * stride + kh, j * stride:j * stride + kw]
                    output[b, o, i, j] = (patch * weight[o]).sum()
            if bias is not None:
                output[b, o] += bias[o]
    return output


class TestConv2d:
    @pytest.mark.parametrize("stride,padding", [(1, 0), (1, 1), (2, 1), (2, 0)])
    def test_matches_reference(self, rng, stride, padding):
        inputs = rng.normal(size=(2, 3, 7, 8))
        weight = rng.normal(size=(4, 3, 3, 3))
        bias = rng.normal(size=4)
        out = F.conv2d(Tensor(inputs), Tensor(weight), Tensor(bias), stride=stride, padding=padding)
        expected = reference_conv2d(inputs, weight, bias, stride, padding)
        assert out.shape == expected.shape
        assert np.allclose(out.data, expected)

    def test_matches_scipy_correlate(self, rng):
        inputs = rng.normal(size=(1, 1, 9, 9))
        weight = rng.normal(size=(1, 1, 3, 3))
        out = F.conv2d(Tensor(inputs), Tensor(weight), None)
        expected = scipy_signal.correlate2d(inputs[0, 0], weight[0, 0], mode="valid")
        assert np.allclose(out.data[0, 0], expected)

    def test_gradients(self, rng):
        x = Tensor(rng.normal(size=(2, 2, 6, 6)), requires_grad=True)
        w = Tensor(rng.normal(size=(3, 2, 3, 3)) * 0.2, requires_grad=True)
        b = Tensor(rng.normal(size=3) * 0.2, requires_grad=True)
        gradcheck(lambda: (F.conv2d(x, w, b, stride=2, padding=1) ** 2).sum(), [x, w, b], atol=1e-4)

    def test_no_bias_gradients(self, rng):
        x = Tensor(rng.normal(size=(1, 2, 5, 5)), requires_grad=True)
        w = Tensor(rng.normal(size=(2, 2, 3, 3)) * 0.2, requires_grad=True)
        gradcheck(lambda: F.conv2d(x, w, None).sum(), [x, w], atol=1e-4)

    def test_channel_mismatch_raises(self, rng):
        x = Tensor(rng.normal(size=(1, 3, 5, 5)))
        w = Tensor(rng.normal(size=(2, 4, 3, 3)))
        with pytest.raises(ValueError):
            F.conv2d(x, w, None)

    def test_empty_output_raises(self, rng):
        x = Tensor(rng.normal(size=(1, 1, 2, 2)))
        w = Tensor(rng.normal(size=(1, 1, 5, 5)))
        with pytest.raises(ValueError):
            F.conv2d(x, w, None)


class TestIm2Col:
    def test_roundtrip_is_adjoint(self, rng):
        """<im2col(x), y> == <x, col2im(y)> (the operators are adjoint)."""
        shape = (2, 3, 6, 7)
        kernel, stride, padding = (3, 3), (2, 2), (1, 1)
        x = rng.normal(size=shape)
        cols, _ = im2col(x, kernel, stride, padding)
        y = rng.normal(size=cols.shape)
        lhs = float((cols * y).sum())
        rhs = float((x * col2im(y, shape, kernel, stride, padding)).sum())
        assert np.isclose(lhs, rhs)

    @given(st.integers(4, 9), st.integers(4, 9), st.integers(1, 2), st.integers(0, 1),
           st.integers(0, 500))
    @settings(max_examples=20, deadline=None)
    def test_output_size_formula(self, height, width, stride, padding, seed):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(1, 2, height, width))
        kernel = (3, 3)
        if height + 2 * padding < 3 or width + 2 * padding < 3:
            return
        cols, (out_h, out_w) = im2col(x, kernel, (stride, stride), (padding, padding))
        assert out_h == (height + 2 * padding - 3) // stride + 1
        assert out_w == (width + 2 * padding - 3) // stride + 1
        assert cols.shape == (2 * 9, out_h * out_w * 1)


class TestPooling:
    def test_max_pool_values(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out = F.max_pool2d(Tensor(x), 2)
        assert np.allclose(out.data[0, 0], [[5, 7], [13, 15]])

    def test_avg_pool_values(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out = F.avg_pool2d(Tensor(x), 2)
        assert np.allclose(out.data[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_max_pool_gradients(self, rng):
        x = Tensor(rng.normal(size=(2, 3, 6, 6)), requires_grad=True)
        gradcheck(lambda: (F.max_pool2d(x, 2) ** 2).sum(), [x], atol=1e-4)

    def test_avg_pool_gradients(self, rng):
        x = Tensor(rng.normal(size=(2, 3, 6, 6)), requires_grad=True)
        gradcheck(lambda: (F.avg_pool2d(x, 3, stride=3) ** 2).sum(), [x], atol=1e-4)

    def test_global_avg_pool(self, rng):
        x = rng.normal(size=(2, 5, 4, 4))
        out = F.global_avg_pool2d(Tensor(x))
        assert out.shape == (2, 5)
        assert np.allclose(out.data, x.mean(axis=(2, 3)))

    def test_strided_pooling_shape(self, rng):
        x = Tensor(rng.normal(size=(1, 1, 8, 8)))
        assert F.max_pool2d(x, 2, stride=2).shape == (1, 1, 4, 4)
        assert F.max_pool2d(x, 3, stride=2).shape == (1, 1, 3, 3)


class TestSoftmaxFamily:
    def test_softmax_sums_to_one(self, rng):
        logits = Tensor(rng.normal(size=(5, 7)))
        probabilities = F.softmax(logits)
        assert np.allclose(probabilities.data.sum(axis=1), 1.0)
        assert (probabilities.data >= 0).all()

    def test_log_softmax_matches_scipy(self, rng):
        from scipy.special import log_softmax as scipy_log_softmax

        logits = rng.normal(size=(4, 6))
        ours = F.log_softmax(Tensor(logits)).data
        assert np.allclose(ours, scipy_log_softmax(logits, axis=-1))

    def test_softmax_invariant_to_shift(self, rng):
        logits = rng.normal(size=(3, 5))
        a = F.softmax(Tensor(logits)).data
        b = F.softmax(Tensor(logits + 100.0)).data
        assert np.allclose(a, b)

    def test_log_softmax_gradients(self, rng):
        logits = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        gradcheck(lambda: (F.log_softmax(logits) ** 2).sum(), [logits])

    def test_one_hot(self):
        encoded = F.one_hot(np.array([0, 2, 1]), 3)
        assert np.allclose(encoded, np.eye(3)[[0, 2, 1]])

    def test_one_hot_out_of_range(self):
        with pytest.raises(ValueError):
            F.one_hot(np.array([0, 5]), 3)


class TestLinearAndDropout:
    def test_linear_matches_numpy(self, rng):
        x = rng.normal(size=(4, 6))
        w = rng.normal(size=(3, 6))
        b = rng.normal(size=3)
        out = F.linear(Tensor(x), Tensor(w), Tensor(b))
        assert np.allclose(out.data, x @ w.T + b)

    def test_dropout_eval_is_identity(self, rng):
        x = Tensor(rng.normal(size=(10, 10)))
        out = F.dropout(x, rate=0.5, training=False)
        assert np.allclose(out.data, x.data)

    def test_dropout_preserves_expectation(self, rng):
        x = Tensor(np.ones((2000,)))
        out = F.dropout(x, rate=0.3, training=True, rng=rng)
        assert out.data.mean() == pytest.approx(1.0, abs=0.08)
        # surviving entries are scaled by 1 / (1 - rate)
        surviving = out.data[out.data > 0]
        assert np.allclose(surviving, 1.0 / 0.7)

    def test_dropout_invalid_rate(self, rng):
        with pytest.raises(ValueError):
            F.dropout(Tensor(np.ones(3)), rate=1.0, training=True)
