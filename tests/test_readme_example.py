"""The README's minimal API example must keep working (documentation contract)."""

import numpy as np

from repro.core.config import ExperimentConfig, TrainingConfig
from repro.core.pipeline import OplixNet


def test_readme_minimal_example_runs():
    """Mirror of the README snippet, scaled down so it runs in a couple of seconds."""
    config = ExperimentConfig(
        name="demo", architecture="fcnn", dataset="mnist",
        image_size=(10, 10), channels=1, num_classes=10,
        assignment="SI",
        decoder="merge",
        train_samples=200, test_samples=80,
        training=TrainingConfig(epochs=2, batch_size=32, learning_rate=0.05),
    )
    pipeline = OplixNet(config)
    student, result = pipeline.train_student(mutual_learning=True)

    summary = pipeline.area_summary()
    assert summary["reduction"] > 0.5
    assert 0.0 <= result.student_test_accuracy <= 1.0

    deployed = pipeline.deploy(student)
    _train, test = pipeline.datasets()
    images = np.stack([test[i][0] for i in range(8)])
    logits = deployed.predict_logits(images, pipeline.student_scheme())
    assert logits.shape == (8, 10)
    assert np.isfinite(logits).all()
