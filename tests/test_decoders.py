"""Tests of the learnable decoder heads (Section III-D / Fig. 6 / Fig. 9)."""

import numpy as np
import pytest

from repro.core.decoders import (
    DECODER_CHOICES,
    CoherentDecoderHead,
    ElectronicCalibration,
    LinearDecoderHead,
    MergeDecoderHead,
    PhotodiodeHead,
    UnitaryDecoderHead,
    UnitaryLinear,
    build_decoder_head,
)
from repro.nn.complex import ComplexTensor
from repro.photonics.area import mzi_count_matrix, mzi_count_unitary
from repro.tensor import Tensor


def complex_features(rng, batch=4, width=12):
    return ComplexTensor(Tensor(rng.normal(size=(batch, width))),
                         Tensor(rng.normal(size=(batch, width))))


class TestHeadForward:
    @pytest.mark.parametrize("name", DECODER_CHOICES)
    def test_output_shape(self, name, rng):
        head = build_decoder_head(name, in_features=12, num_classes=5, rng=rng)
        logits = head(complex_features(rng, batch=3, width=12))
        assert logits.shape == (3, 5)

    def test_unknown_decoder(self):
        with pytest.raises(KeyError):
            build_decoder_head("bogus", 4, 2)

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            MergeDecoderHead(0, 5)

    def test_coherent_head_returns_calibrated_real_part(self, rng):
        head = CoherentDecoderHead(6, 3, rng=rng)
        features = complex_features(rng, width=6)
        logits = head(features)
        raw = head.last_layer(features).real.data
        scale, bias = head.calibration.as_arrays()
        assert np.allclose(logits.data, raw * scale + bias)

    def test_photodiode_head_discards_phase(self, rng):
        head = PhotodiodeHead(6, 3, rng=rng)
        features = complex_features(rng, width=6)
        outputs = head.last_layer(features)
        rotated = ComplexTensor(Tensor(-outputs.imag.data.copy()), Tensor(outputs.real.data.copy()))
        # multiplying every output by j changes the phase but not the detected amplitude
        assert np.allclose(head.calibration(outputs.magnitude()).data,
                           head.calibration(rotated.magnitude()).data)

    def test_merge_head_pairs_photodiodes(self, rng):
        head = MergeDecoderHead(8, 4, rng=rng)
        features = complex_features(rng, width=8)
        outputs = head.merged_layer(features)
        power = outputs.power().data
        expected = np.sqrt(power[:, :4] + power[:, 4:] + 1e-12)
        scale, bias = head.calibration.as_arrays()
        assert np.allclose(head(features).data, expected * scale + bias)

    def test_gradients_reach_head_parameters(self, rng):
        head = MergeDecoderHead(6, 3, rng=rng)
        loss = head(complex_features(rng, width=6)).sum()
        loss.backward()
        assert head.merged_layer.weight_real.grad is not None
        assert head.calibration.scale.grad is not None


class TestAreaAccounting:
    def test_paper_fcnn_head_costs(self):
        """Extra MZIs for the paper's FCNN head: merge 155 < unitary 190 < linear 245."""
        in_features, classes = 50, 10
        merge = MergeDecoderHead(in_features, classes)
        unitary = UnitaryDecoderHead(in_features, classes)
        linear = LinearDecoderHead(in_features, classes)
        coherent = CoherentDecoderHead(in_features, classes)

        assert coherent.extra_mzis() == 0
        assert merge.extra_mzis() == mzi_count_matrix(20, 50) - mzi_count_matrix(10, 50) == 155
        assert unitary.extra_mzis() == mzi_count_unitary(20) == 190
        assert linear.extra_mzis() == mzi_count_matrix(20, 10) == 245
        assert merge.extra_mzis() < unitary.extra_mzis() < linear.extra_mzis()

    def test_merge_has_most_parameters_but_least_area(self):
        """The paper's observation: more weights, fewer MZIs than linear/unitary."""
        merge = MergeDecoderHead(50, 10)
        linear = LinearDecoderHead(50, 10)
        unitary = UnitaryDecoderHead(50, 10)
        assert merge.num_parameters() >= linear.num_parameters() - 2 * 20 * 10
        assert merge.total_mzis() < linear.total_mzis()
        assert merge.total_mzis() < unitary.total_mzis()

    def test_extra_area_is_small_fraction_of_fcnn(self):
        """Merge adds well under 1% of the whole split FCNN's area (Fig. 9)."""
        total_model = mzi_count_matrix(50, 392) + mzi_count_matrix(20, 50)
        extra = MergeDecoderHead(50, 10).extra_mzis()
        assert extra / total_model < 0.01

    def test_readout_flags(self):
        assert CoherentDecoderHead(5, 2).needs_post_processing
        assert CoherentDecoderHead(5, 2).extra_readout_latency
        assert not MergeDecoderHead(5, 2).needs_post_processing


class TestUnitaryLinear:
    def test_initialised_unitary(self, rng):
        layer = UnitaryLinear(6, rng=rng)
        assert layer.unitarity_error() < 1e-9

    def test_projection_restores_unitarity(self, rng):
        layer = UnitaryLinear(5, rng=rng)
        layer.weight_real.data += rng.normal(scale=0.3, size=(5, 5))
        assert layer.unitarity_error() > 1e-3
        layer.project_to_unitary()
        assert layer.unitarity_error() < 1e-9

    def test_forward_matches_numpy(self, rng):
        layer = UnitaryLinear(4, rng=rng)
        z = rng.normal(size=(3, 4)) + 1j * rng.normal(size=(3, 4))
        out = layer(ComplexTensor(Tensor(z.real.copy()), Tensor(z.imag.copy())))
        assert np.allclose(out.to_complex_array(), z @ layer.complex_weight().T)

    def test_energy_conserved(self, rng):
        layer = UnitaryLinear(4, rng=rng)
        z = rng.normal(size=(5, 4)) + 1j * rng.normal(size=(5, 4))
        out = layer(ComplexTensor(Tensor(z.real.copy()), Tensor(z.imag.copy())))
        assert np.allclose(np.abs(out.to_complex_array() ** 1).sum(axis=1) * 0 +
                           (np.abs(out.to_complex_array()) ** 2).sum(axis=1),
                           (np.abs(z) ** 2).sum(axis=1))

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            UnitaryLinear(0)


class TestElectronicCalibration:
    def test_identity_at_init(self, rng):
        calibration = ElectronicCalibration(4)
        logits = Tensor(rng.normal(size=(3, 4)))
        assert np.allclose(calibration(logits).data, logits.data)

    def test_affine_applied(self, rng):
        calibration = ElectronicCalibration(3)
        calibration.scale.data[:] = 2.0
        calibration.bias.data[:] = -1.0
        logits = Tensor(np.ones((2, 3)))
        assert np.allclose(calibration(logits).data, 1.0)
        scale, bias = calibration.as_arrays()
        assert np.allclose(scale, 2.0) and np.allclose(bias, -1.0)
