"""Tests of the complex / split-complex building blocks.

The central invariant: every complex layer, expressed as a pair of real
tensors, must agree with the equivalent numpy complex computation -- this is
exactly the Eq. (2) split complex-to-real conversion that lets SCVNNs deploy
onto MZI meshes.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.nn.complex import (
    ComplexAvgPool2d,
    ComplexBatchNorm1d,
    ComplexBatchNorm2d,
    ComplexConv2d,
    ComplexDropout,
    ComplexFlatten,
    ComplexGlobalAvgPool2d,
    ComplexLinear,
    ComplexMaxPool2d,
    ComplexSequential,
    ComplexTanh,
    ComplexTensor,
    CReLU,
    ModReLU,
    ZReLU,
    complex_matrix_to_real,
    complex_vector_to_real,
    real_vector_to_complex,
)
from repro.tensor import Tensor, functional as F, gradcheck


def random_complex(rng, shape):
    return rng.normal(size=shape) + 1j * rng.normal(size=shape)


class TestComplexTensor:
    def test_roundtrip_with_numpy(self, rng):
        z = random_complex(rng, (3, 4))
        ct = ComplexTensor.from_complex_array(z)
        assert np.allclose(ct.to_complex_array(), z)

    def test_from_polar(self):
        ct = ComplexTensor.from_polar(np.array([2.0]), np.array([np.pi / 2]))
        assert np.allclose(ct.to_complex_array(), [2j])

    def test_arithmetic_matches_numpy(self, rng):
        a, b = random_complex(rng, (3, 4)), random_complex(rng, (3, 4))
        ca, cb = ComplexTensor.from_complex_array(a), ComplexTensor.from_complex_array(b)
        assert np.allclose((ca + cb).to_complex_array(), a + b)
        assert np.allclose((ca - cb).to_complex_array(), a - b)
        assert np.allclose((ca * cb).to_complex_array(), a * b)
        assert np.allclose((-ca).to_complex_array(), -a)
        assert np.allclose(ca.conj().to_complex_array(), a.conj())

    def test_matmul_matches_numpy(self, rng):
        a, b = random_complex(rng, (3, 4)), random_complex(rng, (4, 5))
        ca, cb = ComplexTensor.from_complex_array(a), ComplexTensor.from_complex_array(b)
        assert np.allclose((ca @ cb).to_complex_array(), a @ b)

    def test_magnitude_power_phase(self, rng):
        z = random_complex(rng, (5,))
        ct = ComplexTensor.from_complex_array(z)
        assert np.allclose(ct.magnitude().data, np.abs(z), atol=1e-6)
        assert np.allclose(ct.power().data, np.abs(z) ** 2)
        assert np.allclose(ct.phase(), np.angle(z))

    def test_scalar_and_real_tensor_multiplication(self, rng):
        z = random_complex(rng, (4,))
        ct = ComplexTensor.from_complex_array(z)
        assert np.allclose((ct * 2.5).to_complex_array(), 2.5 * z)
        gain = Tensor(np.arange(1.0, 5.0))
        assert np.allclose((ct * gain).to_complex_array(), z * np.arange(1.0, 5.0))

    def test_shape_manipulation(self, rng):
        z = random_complex(rng, (2, 3, 4))
        ct = ComplexTensor.from_complex_array(z)
        assert ct.reshape(6, 4).shape == (6, 4)
        assert ct.flatten(1).shape == (2, 12)
        assert ct.transpose(2, 0, 1).shape == (4, 2, 3)
        assert ct[0].shape == (3, 4)
        assert ct.concat_parts(axis=-1).shape == (2, 3, 8)

    def test_mismatched_parts_rejected(self, rng):
        with pytest.raises(ValueError):
            ComplexTensor(Tensor(np.zeros((2, 3))), Tensor(np.zeros((3, 2))))

    @given(st.integers(1, 5), st.integers(1, 5), st.integers(0, 2 ** 16))
    @settings(max_examples=25, deadline=None)
    def test_property_multiplication(self, rows, cols, seed):
        rng = np.random.default_rng(seed)
        a = random_complex(rng, (rows, cols))
        b = random_complex(rng, (rows, cols))
        product = (ComplexTensor.from_complex_array(a) * ComplexTensor.from_complex_array(b))
        assert np.allclose(product.to_complex_array(), a * b)


class TestEq2Expansion:
    def test_expansion_matches_paper_template(self):
        # the 2x2 template of Eq. (2)
        matrix = np.array([[1 + 2j, 3 + 4j], [5 + 6j, 7 + 8j]])
        expanded = complex_matrix_to_real(matrix)
        expected = np.array([
            [1, -2, 3, -4],
            [2, 1, 4, 3],
            [5, -6, 7, -8],
            [6, 5, 8, 7],
        ], dtype=float)
        assert np.allclose(expanded, expected)

    @given(st.integers(1, 6), st.integers(1, 6), st.integers(0, 2 ** 16))
    @settings(max_examples=30, deadline=None)
    def test_expanded_mvm_equals_complex_mvm(self, rows, cols, seed):
        rng = np.random.default_rng(seed)
        matrix = random_complex(rng, (rows, cols))
        vector = random_complex(rng, (cols,))
        complex_result = matrix @ vector
        real_result = complex_matrix_to_real(matrix) @ complex_vector_to_real(vector)
        assert np.allclose(complex_vector_to_real(complex_result), real_result)

    def test_vector_roundtrip(self, rng):
        vector = random_complex(rng, (7,))
        assert np.allclose(real_vector_to_complex(complex_vector_to_real(vector)), vector)

    def test_expanded_matrix_has_half_the_free_parameters(self, rng):
        matrix = random_complex(rng, (3, 5))
        expanded = complex_matrix_to_real(matrix)
        # entries appear twice (once as +re/+im, once mirrored), so the number
        # of unique absolute values is (at most) half of a free real matrix
        assert expanded.shape == (6, 10)
        assert np.allclose(expanded[0::2, 0::2], expanded[1::2, 1::2])
        assert np.allclose(expanded[0::2, 1::2], -expanded[1::2, 0::2])

    def test_odd_length_real_vector_rejected(self):
        with pytest.raises(ValueError):
            real_vector_to_complex(np.zeros(5))


class TestComplexLinear:
    def test_matches_numpy_complex(self, rng):
        layer = ComplexLinear(6, 4, bias=False, rng=rng)
        z = random_complex(rng, (8, 6))
        out = layer(ComplexTensor.from_complex_array(z))
        assert np.allclose(out.to_complex_array(), z @ layer.complex_weight().T)

    def test_bias_is_complex(self, rng):
        layer = ComplexLinear(3, 2, rng=rng)
        layer.bias_real.data[:] = 1.0
        layer.bias_imag.data[:] = -2.0
        out = layer(ComplexTensor.from_complex_array(np.zeros((1, 3), dtype=complex)))
        assert np.allclose(out.to_complex_array(), np.full((1, 2), 1.0 - 2.0j))

    def test_real_expanded_weight_consistency(self, rng):
        layer = ComplexLinear(4, 3, bias=False, rng=rng)
        z = random_complex(rng, (4,))
        expanded = layer.real_expanded_weight()
        expected = complex_vector_to_real(layer.complex_weight() @ z)
        assert np.allclose(expanded @ complex_vector_to_real(z), expected)

    def test_gradients(self, rng):
        layer = ComplexLinear(3, 2, rng=rng)
        real = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        imag = Tensor(rng.normal(size=(2, 3)), requires_grad=True)

        def loss():
            out = layer(ComplexTensor(real, imag))
            return out.power().sum()

        gradcheck(loss, [real, imag, layer.weight_real, layer.weight_imag])

    def test_accepts_plain_tensor(self, rng):
        layer = ComplexLinear(3, 2, rng=rng)
        out = layer(Tensor(rng.normal(size=(4, 3))))
        assert isinstance(out, ComplexTensor)

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            ComplexLinear(0, 3)


class TestComplexConv2d:
    def test_matches_numpy_complex_convolution(self, rng):
        layer = ComplexConv2d(2, 3, 3, padding=1, bias=False, rng=rng)
        z = random_complex(rng, (2, 2, 6, 6))
        out = layer(ComplexTensor(Tensor(z.real.copy()), Tensor(z.imag.copy()))).to_complex_array()

        weight = layer.complex_weight()
        real_part = (F.conv2d(Tensor(z.real.copy()), Tensor(weight.real.copy()), None, padding=1).data
                     - F.conv2d(Tensor(z.imag.copy()), Tensor(weight.imag.copy()), None, padding=1).data)
        imag_part = (F.conv2d(Tensor(z.real.copy()), Tensor(weight.imag.copy()), None, padding=1).data
                     + F.conv2d(Tensor(z.imag.copy()), Tensor(weight.real.copy()), None, padding=1).data)
        assert np.allclose(out, real_part + 1j * imag_part)

    def test_output_shape(self, rng):
        layer = ComplexConv2d(2, 5, 3, stride=2, padding=1, rng=rng)
        z = ComplexTensor(Tensor(rng.normal(size=(1, 2, 9, 9))), Tensor(rng.normal(size=(1, 2, 9, 9))))
        assert layer(z).shape == (1, 5, 5, 5)

    def test_gradients(self, rng):
        layer = ComplexConv2d(1, 2, 3, rng=rng)
        real = Tensor(rng.normal(size=(1, 1, 4, 4)), requires_grad=True)
        imag = Tensor(rng.normal(size=(1, 1, 4, 4)), requires_grad=True)
        gradcheck(lambda: layer(ComplexTensor(real, imag)).power().sum(),
                  [real, imag, layer.weight_real, layer.weight_imag], atol=1e-4)


class TestComplexActivations:
    def test_crelu(self, rng):
        z = ComplexTensor(Tensor(np.array([[-1.0, 2.0]])), Tensor(np.array([[3.0, -4.0]])))
        out = CReLU()(z)
        assert np.allclose(out.real.data, [[0.0, 2.0]])
        assert np.allclose(out.imag.data, [[3.0, 0.0]])

    def test_zrelu_keeps_first_quadrant_only(self):
        z = ComplexTensor(Tensor(np.array([[1.0, -1.0, 1.0]])), Tensor(np.array([[1.0, 1.0, -1.0]])))
        out = ZReLU()(z)
        assert np.allclose(out.to_complex_array(), [[1 + 1j, 0, 0]])

    def test_modrelu_preserves_phase(self, rng):
        z = random_complex(rng, (4, 6))
        layer = ModReLU(6)
        layer.bias.data[:] = -0.2
        out = layer(ComplexTensor.from_complex_array(z)).to_complex_array()
        passed = np.abs(out) > 1e-9
        assert np.allclose(np.angle(out[passed]), np.angle(z[passed]), atol=1e-6)
        # magnitudes shrink by at most |bias|
        assert np.all(np.abs(out) <= np.abs(z) + 1e-9)

    def test_modrelu_kills_small_magnitudes(self):
        layer = ModReLU(1)
        layer.bias.data[:] = -5.0
        z = ComplexTensor(Tensor(np.array([[0.5]])), Tensor(np.array([[0.5]])))
        assert np.allclose(layer(z).to_complex_array(), 0.0)

    def test_modrelu_gradients(self, rng):
        layer = ModReLU(3)
        layer.bias.data[:] = -0.1
        real = Tensor(rng.normal(size=(2, 3)) + 2.0, requires_grad=True)
        imag = Tensor(rng.normal(size=(2, 3)) + 2.0, requires_grad=True)
        gradcheck(lambda: layer(ComplexTensor(real, imag)).power().sum(),
                  [real, imag, layer.bias], atol=1e-4)

    def test_complex_tanh(self, rng):
        z = random_complex(rng, (3, 3))
        out = ComplexTanh()(ComplexTensor.from_complex_array(z))
        assert np.allclose(out.real.data, np.tanh(z.real))
        assert np.allclose(out.imag.data, np.tanh(z.imag))

    def test_modrelu_invalid_features(self):
        with pytest.raises(ValueError):
            ModReLU(0)


class TestComplexStructuralLayers:
    def test_complex_batchnorm2d_normalizes_both_parts(self, rng):
        layer = ComplexBatchNorm2d(4)
        z = ComplexTensor(Tensor(rng.normal(3.0, 2.0, size=(16, 4, 5, 5))),
                          Tensor(rng.normal(-1.0, 0.5, size=(16, 4, 5, 5))))
        out = layer(z)
        assert np.allclose(out.real.data.mean(axis=(0, 2, 3)), 0.0, atol=1e-6)
        assert np.allclose(out.imag.data.mean(axis=(0, 2, 3)), 0.0, atol=1e-6)

    def test_complex_batchnorm1d(self, rng):
        layer = ComplexBatchNorm1d(3)
        z = ComplexTensor(Tensor(rng.normal(size=(32, 3))), Tensor(rng.normal(size=(32, 3))))
        assert layer(z).shape == (32, 3)

    def test_complex_avg_pool_is_exact(self, rng):
        z = random_complex(rng, (2, 3, 4, 4))
        out = ComplexAvgPool2d(2)(ComplexTensor.from_complex_array(z)).to_complex_array()
        expected = z.reshape(2, 3, 2, 2, 2, 2).mean(axis=(3, 5))
        assert np.allclose(out, expected)

    def test_complex_max_pool_selects_by_modulus(self):
        real = np.zeros((1, 1, 2, 2))
        imag = np.zeros((1, 1, 2, 2))
        real[0, 0] = [[1.0, -3.0], [0.5, 0.0]]
        imag[0, 0] = [[0.0, 1.0], [2.0, 0.0]]
        out = ComplexMaxPool2d(2)(ComplexTensor(Tensor(real), Tensor(imag)))
        # the element with the largest modulus is (-3 + 1j)
        assert np.allclose(out.to_complex_array(), [[[[-3.0 + 1.0j]]]])

    def test_complex_max_pool_gradients(self, rng):
        real = Tensor(rng.normal(size=(1, 2, 4, 4)), requires_grad=True)
        imag = Tensor(rng.normal(size=(1, 2, 4, 4)), requires_grad=True)
        gradcheck(lambda: ComplexMaxPool2d(2)(ComplexTensor(real, imag)).power().sum(),
                  [real, imag], atol=1e-4)

    def test_global_avg_pool_and_flatten(self, rng):
        z = ComplexTensor(Tensor(rng.normal(size=(2, 3, 4, 4))), Tensor(rng.normal(size=(2, 3, 4, 4))))
        assert ComplexGlobalAvgPool2d()(z).shape == (2, 3)
        assert ComplexFlatten()(z).shape == (2, 48)

    def test_complex_dropout_drops_both_parts_together(self, rng):
        layer = ComplexDropout(0.5, rng=rng)
        z = ComplexTensor(Tensor(np.ones((50, 50))), Tensor(np.ones((50, 50))))
        out = layer(z)
        real_zero = out.real.data == 0
        imag_zero = out.imag.data == 0
        assert np.array_equal(real_zero, imag_zero)
        assert real_zero.any()

    def test_complex_dropout_eval_identity(self, rng):
        layer = ComplexDropout(0.5, rng=rng)
        layer.eval()
        z = ComplexTensor(Tensor(np.ones((4, 4))), Tensor(np.ones((4, 4))))
        assert np.allclose(layer(z).real.data, 1.0)

    def test_complex_sequential(self, rng):
        model = ComplexSequential(ComplexLinear(4, 8, rng=rng), CReLU(), ComplexLinear(8, 2, rng=rng))
        z = ComplexTensor(Tensor(rng.normal(size=(3, 4))), Tensor(rng.normal(size=(3, 4))))
        assert model(z).shape == (3, 2)
        assert len(model) == 3
        assert isinstance(model[1], CReLU)
