"""Tests of elementary photonic components (DC, PS, MZI, attenuator, power)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.photonics import (
    MZI,
    DirectionalCoupler,
    PhaseShifter,
    attenuator,
    directional_coupler,
    mzi_transfer,
    phase_shifter,
    phase_shifter_power_mw,
)
from repro.photonics.components import MAX_PHASE_SHIFTER_POWER_MW


def is_unitary_2x2(matrix):
    return np.allclose(matrix.conj().T @ matrix, np.eye(2), atol=1e-12)


class TestDirectionalCoupler:
    def test_fifty_fifty_splits_power_evenly(self):
        coupler = directional_coupler(0.5)
        out = coupler @ np.array([1.0, 0.0])
        powers = np.abs(out) ** 2
        assert np.allclose(powers, [0.5, 0.5])

    def test_cross_path_carries_90_degree_shift(self):
        coupler = directional_coupler(0.5)
        out = coupler @ np.array([1.0, 0.0])
        assert np.angle(out[1]) - np.angle(out[0]) == pytest.approx(math.pi / 2)

    def test_unitary_for_any_ratio(self):
        for ratio in (0.0, 0.25, 0.5, 0.9, 1.0):
            assert is_unitary_2x2(directional_coupler(ratio))

    def test_invalid_ratio(self):
        with pytest.raises(ValueError):
            directional_coupler(1.5)

    def test_component_class(self):
        component = DirectionalCoupler(0.5)
        out = component(np.array([1.0 + 0j, 0.0]))
        assert np.allclose(np.abs(out) ** 2, [0.5, 0.5])


class TestPhaseShifter:
    def test_upper_arm_phase(self):
        matrix = phase_shifter(math.pi / 3)
        assert matrix[0, 0] == pytest.approx(np.exp(1j * math.pi / 3))
        assert matrix[1, 1] == 1.0

    def test_lower_arm(self):
        matrix = phase_shifter(math.pi, arm=1)
        assert matrix[1, 1] == pytest.approx(-1.0)

    def test_invalid_arm(self):
        with pytest.raises(ValueError):
            phase_shifter(0.1, arm=2)

    def test_power_scales_linearly_with_phase(self):
        assert phase_shifter_power_mw(0.0) == 0.0
        assert phase_shifter_power_mw(math.pi) == pytest.approx(MAX_PHASE_SHIFTER_POWER_MW / 2)
        assert phase_shifter_power_mw(2 * math.pi - 1e-9) == pytest.approx(
            MAX_PHASE_SHIFTER_POWER_MW, rel=1e-6)

    def test_power_wraps_angles(self):
        assert phase_shifter_power_mw(2 * math.pi + math.pi) == pytest.approx(
            phase_shifter_power_mw(math.pi))

    def test_component_class(self):
        shifter = PhaseShifter(angle=math.pi / 2)
        assert shifter.power_mw() == pytest.approx(MAX_PHASE_SHIFTER_POWER_MW / 4)
        out = shifter(np.array([1.0 + 0j, 1.0 + 0j]))
        assert out[0] == pytest.approx(1j)


class TestMZI:
    def test_matches_eq1_analytic_form(self):
        theta, phi = 0.9, 2.1
        matrix = mzi_transfer(theta, phi)
        s, c = math.sin(theta / 2), math.cos(theta / 2)
        expected = 1j * np.exp(1j * theta / 2) * np.array(
            [[np.exp(1j * phi) * s, c], [np.exp(1j * phi) * c, -s]])
        assert np.allclose(matrix, expected)

    @given(st.floats(0, 2 * math.pi), st.floats(0, 2 * math.pi))
    @settings(max_examples=50, deadline=None)
    def test_always_unitary(self, theta, phi):
        assert is_unitary_2x2(mzi_transfer(theta, phi))

    def test_theta_zero_is_full_cross(self):
        """With theta = 0 the MZI routes each input fully to the other port."""
        matrix = mzi_transfer(0.0, 0.0)
        out = matrix @ np.array([1.0, 0.0])
        assert np.abs(out[0]) == pytest.approx(0.0, abs=1e-12)
        assert np.abs(out[1]) == pytest.approx(1.0)

    def test_theta_pi_is_full_bar(self):
        """With theta = pi the MZI keeps each input on its own port."""
        matrix = mzi_transfer(math.pi, 0.0)
        out = matrix @ np.array([1.0, 0.0])
        assert np.abs(out[0]) == pytest.approx(1.0)
        assert np.abs(out[1]) == pytest.approx(0.0, abs=1e-12)

    def test_energy_conservation(self, rng):
        matrix = mzi_transfer(1.2, 0.4)
        inputs = rng.normal(size=2) + 1j * rng.normal(size=2)
        outputs = matrix @ inputs
        assert np.sum(np.abs(outputs) ** 2) == pytest.approx(np.sum(np.abs(inputs) ** 2))

    def test_component_class_counts_and_power(self):
        mzi = MZI(theta=math.pi, phi=math.pi)
        assert mzi.component_counts == (2, 2)
        assert mzi.power_mw() == pytest.approx(MAX_PHASE_SHIFTER_POWER_MW)
        out = mzi(np.array([1.0 + 0j, 0.0]))
        assert np.allclose(np.abs(out) ** 2, np.abs(mzi.transfer_matrix() @ [1, 0]) ** 2)


class TestAttenuator:
    def test_scaling(self):
        assert attenuator(0.5) == 0.5
        with pytest.raises(ValueError):
            attenuator(-0.1)
