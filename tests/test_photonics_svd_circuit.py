"""Tests of SVD weight mapping, photonic circuits, noise and quantization."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.photonics import (
    PhaseNoiseModel,
    PhotonicLinearLayer,
    PhotonicNetwork,
    mzi_count_matrix,
    quantize_phases,
    random_unitary,
    reck_decompose,
    svd_decompose,
)
from repro.photonics.circuit import modulus_squared, split_relu


class TestSVDMapping:
    @pytest.mark.parametrize("shape", [(4, 4), (3, 7), (8, 2), (1, 5), (6, 1)])
    def test_matrix_reconstruction(self, shape, rng):
        weight = rng.normal(size=shape)
        photonic = svd_decompose(weight)
        assert np.allclose(photonic.matrix(), weight, atol=1e-9)

    def test_complex_matrix_reconstruction(self, rng):
        weight = rng.normal(size=(4, 6)) + 1j * rng.normal(size=(4, 6))
        photonic = svd_decompose(weight)
        assert np.allclose(photonic.matrix(), weight, atol=1e-9)

    def test_apply_matches_matmul(self, rng):
        weight = rng.normal(size=(5, 8))
        photonic = svd_decompose(weight)
        vector = rng.normal(size=8) + 1j * rng.normal(size=8)
        assert np.allclose(photonic.apply(vector), weight @ vector, atol=1e-9)

    def test_apply_batched(self, rng):
        weight = rng.normal(size=(3, 4))
        photonic = svd_decompose(weight)
        batch = rng.normal(size=(6, 4)).astype(complex)
        assert np.allclose(photonic.apply(batch), batch @ weight.T, atol=1e-9)

    def test_mzi_count_matches_closed_form(self, rng):
        weight = rng.normal(size=(7, 11))
        photonic = svd_decompose(weight)
        assert photonic.device_count == mzi_count_matrix(7, 11)

    def test_normalisation_keeps_attenuators_passive(self, rng):
        weight = rng.normal(size=(6, 6)) * 10.0
        photonic = svd_decompose(weight, normalize=True)
        assert photonic.singular_values.max() <= 1.0 + 1e-12
        assert photonic.scale > 1.0
        assert np.allclose(photonic.matrix(), weight, atol=1e-8)

    def test_reck_method_also_works(self, rng):
        weight = rng.normal(size=(4, 5))
        photonic = svd_decompose(weight, method="reck")
        assert np.allclose(photonic.matrix(), weight, atol=1e-9)

    def test_non_matrix_rejected(self, rng):
        with pytest.raises(ValueError):
            svd_decompose(rng.normal(size=(2, 3, 4)))

    @given(st.integers(1, 6), st.integers(1, 6), st.integers(0, 2 ** 16))
    @settings(max_examples=20, deadline=None)
    def test_property_reconstruction(self, rows, cols, seed):
        rng = np.random.default_rng(seed)
        weight = rng.normal(size=(rows, cols))
        assert np.abs(svd_decompose(weight).matrix() - weight).max() < 1e-8


class TestBatchedSVDs:
    """Same-shape weights must factor through one stacked ``np.linalg.svd``."""

    @staticmethod
    def _mixed_weights(rng):
        weights = [rng.normal(size=(6, 4)) + 1j * rng.normal(size=(6, 4))
                   for _ in range(3)]
        weights += [rng.normal(size=(5, 5)) for _ in range(2)]
        weights.append(rng.normal(size=(3, 7)))
        degenerate = rng.normal(size=(6, 4))
        degenerate[:, -1] = degenerate[:, 0]         # rank-deficient member
        weights.append(degenerate.astype(complex))
        return weights

    def test_stacked_factors_match_per_matrix_svd(self, rng):
        from repro.photonics.svd_mapping import _svd_factors, _svd_factors_many

        weights = self._mixed_weights(rng)
        stacked = _svd_factors_many(weights, normalize=True)
        for weight, factors in zip(weights, stacked):
            shape, left, right, singular_values, scale = factors
            ref_shape, ref_left, ref_right, ref_values, ref_scale = \
                _svd_factors(weight, normalize=True)
            assert shape == ref_shape and scale == ref_scale
            # the gufunc runs the same LAPACK routine per slice
            assert np.abs(left - ref_left).max() <= 1e-12
            assert np.abs(right - ref_right).max() <= 1e-12
            assert np.abs(singular_values - ref_values).max() <= 1e-12

    @pytest.mark.parametrize("method", ["clements", "reck"])
    def test_deployed_matrices_match_per_weight_path(self, method, rng):
        from repro.photonics.svd_mapping import svd_decompose_many

        weights = self._mixed_weights(rng)
        grouped = svd_decompose_many(weights, method=method)
        for weight, photonic in zip(weights, grouped):
            reference = svd_decompose(weight, method=method)
            assert np.abs(photonic.matrix() - reference.matrix()).max() <= 1e-10
            assert photonic.mzi_count == reference.mzi_count

    def test_non_2d_weight_rejected(self, rng):
        from repro.photonics.svd_mapping import svd_decompose_many

        with pytest.raises(ValueError):
            svd_decompose_many([rng.normal(size=(2, 3, 4))])


class TestPhotonicLayersAndNetworks:
    def test_layer_forward_with_bias(self, rng):
        weight = rng.normal(size=(3, 5))
        bias = rng.normal(size=3) + 1j * rng.normal(size=3)
        layer = PhotonicLinearLayer.from_weight(weight, bias=bias)
        vector = rng.normal(size=5).astype(complex)
        assert np.allclose(layer(vector), weight @ vector + bias, atol=1e-9)

    def test_network_forward_matches_direct_computation(self, rng):
        w1, w2 = rng.normal(size=(4, 6)), rng.normal(size=(2, 4))
        network = PhotonicNetwork([
            PhotonicLinearLayer.from_weight(w1),
            PhotonicLinearLayer.from_weight(w2),
        ])
        vector = rng.normal(size=6) + 1j * rng.normal(size=6)
        expected = w2 @ split_relu(w1 @ vector)
        assert np.allclose(network(vector), expected, atol=1e-9)
        assert network.mzi_count == mzi_count_matrix(4, 6) + mzi_count_matrix(2, 4)

    def test_empty_network_rejected(self):
        with pytest.raises(ValueError):
            PhotonicNetwork([])

    def test_split_relu_and_modulus(self):
        signal = np.array([1 - 2j, -3 + 4j])
        assert np.allclose(split_relu(signal), [1 + 0j, 4j])
        assert np.allclose(modulus_squared(signal), [5.0, 25.0])


class TestNoiseModels:
    def test_zero_noise_is_identity(self, rng):
        mesh = reck_decompose(random_unitary(5, rng))
        noisy = PhaseNoiseModel(sigma=0.0).perturb(mesh)
        assert np.allclose(noisy.reconstruct(), mesh.reconstruct())

    def test_noise_perturbs_but_stays_unitary(self, rng):
        mesh = reck_decompose(random_unitary(5, rng))
        noisy = PhaseNoiseModel(sigma=0.05, rng=rng).perturb(mesh)
        original = mesh.reconstruct()
        perturbed = noisy.reconstruct()
        assert not np.allclose(original, perturbed)
        assert np.allclose(perturbed.conj().T @ perturbed, np.eye(5), atol=1e-9)

    def test_error_grows_with_sigma(self, rng):
        mesh = reck_decompose(random_unitary(8, rng))
        original = mesh.reconstruct()
        errors = []
        for sigma in (0.001, 0.01, 0.1):
            noisy = PhaseNoiseModel(sigma=sigma, rng=np.random.default_rng(0)).perturb(mesh)
            errors.append(np.abs(noisy.reconstruct() - original).max())
        assert errors[0] < errors[1] < errors[2]

    def test_negative_sigma_rejected(self, rng):
        mesh = reck_decompose(random_unitary(3, rng))
        with pytest.raises(ValueError):
            PhaseNoiseModel(sigma=-1.0).perturb(mesh)

    def test_quantization_error_shrinks_with_bits(self, rng):
        mesh = reck_decompose(random_unitary(6, rng))
        original = mesh.reconstruct()
        coarse = np.abs(quantize_phases(mesh, 3).reconstruct() - original).max()
        fine = np.abs(quantize_phases(mesh, 10).reconstruct() - original).max()
        assert fine < coarse
        assert fine < 1e-2

    def test_quantization_invalid_bits(self, rng):
        mesh = reck_decompose(random_unitary(3, rng))
        with pytest.raises(ValueError):
            quantize_phases(mesh, 0)

    def test_layer_with_noise_changes_output(self, rng):
        weight = rng.normal(size=(4, 4))
        layer = PhotonicLinearLayer.from_weight(weight)
        noisy = layer.with_noise(noise=PhaseNoiseModel(sigma=0.1, rng=rng))
        vector = rng.normal(size=4).astype(complex)
        assert not np.allclose(layer(vector), noisy(vector))

    def test_layer_with_quantization_only(self, rng):
        weight = rng.normal(size=(3, 3))
        layer = PhotonicLinearLayer.from_weight(weight)
        quantized = layer.with_noise(quantization_bits=12)
        vector = rng.normal(size=3).astype(complex)
        assert np.allclose(layer(vector), quantized(vector), atol=1e-2)
