"""Tests of the end-to-end OplixNet pipeline driver."""

import numpy as np
import pytest

from repro.core.config import ExperimentConfig, TrainingConfig
from repro.core.distillation import MutualLearningResult
from repro.core.pipeline import OplixNet, PipelineResult
from repro.core.training import TrainingHistory
from repro.models import ComplexFCNN, RealFCNN


def tiny_config(**overrides) -> ExperimentConfig:
    base = dict(
        name="unit-test", architecture="fcnn", dataset="mnist", num_classes=10,
        image_size=(8, 8), channels=1, assignment="SI", decoder="merge",
        train_samples=120, test_samples=60,
        training=TrainingConfig(epochs=2, batch_size=32, learning_rate=0.05, seed=0),
        seed=0,
    )
    base.update(overrides)
    return ExperimentConfig(**base)


class TestPipelineConstruction:
    def test_datasets_are_cached(self):
        pipeline = OplixNet(tiny_config())
        first = pipeline.datasets()
        second = pipeline.datasets()
        assert first is second
        train, test = first
        assert len(train) == 120 and len(test) == 60

    def test_unknown_dataset_rejected(self):
        pipeline = OplixNet(tiny_config(dataset="imagenet"))
        with pytest.raises(ValueError):
            pipeline.datasets()

    def test_builders_return_expected_flavours(self):
        pipeline = OplixNet(tiny_config())
        student = pipeline.build_student()
        teacher = pipeline.build_teacher()
        rvnn = pipeline.build_rvnn()
        assert isinstance(student, ComplexFCNN) and student.in_features == 32
        assert isinstance(teacher, ComplexFCNN) and teacher.in_features == 64
        assert isinstance(rvnn, RealFCNN) and rvnn.in_features == 64
        assert student.head.name == "merge"
        assert teacher.head.name == "photodiode"

    def test_cifar_configs_build(self):
        config = tiny_config(architecture="lenet5", dataset="cifar10", channels=3,
                             image_size=(12, 12), assignment="CL",
                             lenet_kernel=3, lenet_padding=1, width_divider=4)
        pipeline = OplixNet(config)
        student = pipeline.build_student()
        train, _ = pipeline.datasets()
        assert train.images.shape[1] == 3
        assert student.num_classes == 10

    def test_area_summary_reports_reduction(self):
        pipeline = OplixNet(tiny_config())
        summary = pipeline.area_summary()
        assert 0.5 < summary["reduction"] < 0.9
        assert summary["baseline_mzis"] > summary["proposed_mzis"]


class TestPipelineTraining:
    def test_plain_training_returns_history(self):
        pipeline = OplixNet(tiny_config())
        student, history = pipeline.train_student(mutual_learning=False)
        assert isinstance(history, TrainingHistory)
        assert len(history.test_accuracy) == 2

    def test_mutual_learning_returns_result(self):
        pipeline = OplixNet(tiny_config())
        student, result = pipeline.train_student(mutual_learning=True)
        assert isinstance(result, MutualLearningResult)
        assert 0.0 <= result.student_test_accuracy <= 1.0

    def test_train_reference_flavours(self):
        pipeline = OplixNet(tiny_config())
        cvnn, history = pipeline.train_reference("cvnn")
        assert isinstance(cvnn, ComplexFCNN)
        assert len(history.train_loss) == 2
        with pytest.raises(ValueError):
            pipeline.train_reference("scvnn")

    def test_run_collects_everything(self):
        pipeline = OplixNet(tiny_config())
        result = pipeline.run(mutual_learning=False, train_references=True)
        assert isinstance(result, PipelineResult)
        assert result.rvnn_accuracy is not None
        assert result.baseline_accuracy is not None
        assert result.area["reduction"] > 0.5
        assert result.student_history is not None

    def test_deploy_trained_student(self):
        pipeline = OplixNet(tiny_config())
        student, _ = pipeline.train_student(mutual_learning=False)
        deployed = pipeline.deploy(student)
        train, test = pipeline.datasets()
        images = np.stack([test[i][0] for i in range(8)])
        logits = deployed.predict_logits(images, pipeline.student_scheme())
        assert logits.shape == (8, 10)
