"""Tests of the real-valued layers: Linear, Conv2d, BatchNorm, pooling, dropout."""

import numpy as np
import pytest

from repro.nn import (
    AvgPool2d,
    BatchNorm1d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    GlobalAvgPool2d,
    Identity,
    LeakyReLU,
    Linear,
    MaxPool2d,
    ReLU,
    Sigmoid,
    Softmax,
    Tanh,
)
from repro.tensor import Tensor, gradcheck


class TestLinear:
    def test_forward_shape_and_value(self, rng):
        layer = Linear(6, 3, rng=rng)
        x = rng.normal(size=(5, 6))
        out = layer(Tensor(x))
        assert out.shape == (5, 3)
        assert np.allclose(out.data, x @ layer.weight.data.T + layer.bias.data)

    def test_no_bias(self, rng):
        layer = Linear(4, 2, bias=False, rng=rng)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_gradcheck(self, rng):
        layer = Linear(4, 3, rng=rng)
        x = Tensor(rng.normal(size=(2, 4)), requires_grad=True)
        gradcheck(lambda: (layer(x) ** 2).sum(), [x, layer.weight, layer.bias])

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            Linear(0, 3)

    def test_identity_and_flatten(self, rng):
        x = Tensor(rng.normal(size=(2, 3, 4)))
        assert np.allclose(Identity()(x).data, x.data)
        assert Flatten()(x).shape == (2, 12)


class TestConv2dLayer:
    def test_forward_shape(self, rng):
        layer = Conv2d(3, 8, 3, stride=2, padding=1, rng=rng)
        out = layer(Tensor(rng.normal(size=(2, 3, 9, 9))))
        assert out.shape == (2, 8, 5, 5)
        assert layer.output_shape(9, 9) == (5, 5)

    def test_gradcheck(self, rng):
        layer = Conv2d(2, 3, 3, padding=1, rng=rng)
        x = Tensor(rng.normal(size=(1, 2, 5, 5)), requires_grad=True)
        gradcheck(lambda: (layer(x) ** 2).sum(),
                  [x, layer.weight, layer.bias], atol=1e-4)

    def test_invalid_channels(self):
        with pytest.raises(ValueError):
            Conv2d(0, 4, 3)


class TestBatchNorm:
    def test_normalizes_batch_statistics(self, rng):
        layer = BatchNorm1d(8)
        x = Tensor(rng.normal(3.0, 2.0, size=(256, 8)))
        out = layer(x)
        assert np.allclose(out.data.mean(axis=0), 0.0, atol=1e-6)
        assert np.allclose(out.data.std(axis=0), 1.0, atol=1e-2)

    def test_running_stats_updated(self, rng):
        layer = BatchNorm1d(4, momentum=0.5)
        x = Tensor(rng.normal(2.0, 1.0, size=(64, 4)))
        layer(x)
        assert np.all(layer.running_mean > 0.5)

    def test_eval_uses_running_stats(self, rng):
        layer = BatchNorm1d(4)
        for _ in range(60):
            layer(Tensor(rng.normal(5.0, 1.0, size=(64, 4))))
        layer.eval()
        single = layer(Tensor(np.full((1, 4), 5.0)))
        assert np.allclose(single.data, 0.0, atol=0.5)

    def test_batchnorm2d_shapes(self, rng):
        layer = BatchNorm2d(3)
        out = layer(Tensor(rng.normal(size=(4, 3, 5, 5))))
        assert out.shape == (4, 3, 5, 5)
        assert np.allclose(out.data.mean(axis=(0, 2, 3)), 0.0, atol=1e-6)

    def test_gradients_flow(self, rng):
        layer = BatchNorm1d(3)
        x = Tensor(rng.normal(size=(8, 3)), requires_grad=True)
        (layer(x) ** 2).sum().backward()
        assert x.grad is not None
        assert layer.weight.grad is not None

    def test_affine_disabled(self, rng):
        layer = BatchNorm1d(3, affine=False)
        assert layer.parameters() == []
        out = layer(Tensor(rng.normal(size=(16, 3))))
        assert out.shape == (16, 3)

    def test_invalid_features(self):
        with pytest.raises(ValueError):
            BatchNorm1d(0)


class TestPoolingLayers:
    def test_max_pool_layer(self, rng):
        out = MaxPool2d(2)(Tensor(rng.normal(size=(1, 2, 6, 6))))
        assert out.shape == (1, 2, 3, 3)

    def test_avg_pool_layer(self, rng):
        out = AvgPool2d(2, stride=2)(Tensor(rng.normal(size=(1, 2, 6, 6))))
        assert out.shape == (1, 2, 3, 3)

    def test_global_avg_pool_layer(self, rng):
        out = GlobalAvgPool2d()(Tensor(rng.normal(size=(3, 4, 5, 5))))
        assert out.shape == (3, 4)


class TestActivationsAndDropout:
    def test_activation_shapes(self, rng):
        x = Tensor(rng.normal(size=(4, 5)))
        for layer in (ReLU(), LeakyReLU(0.2), Tanh(), Sigmoid(), Softmax()):
            assert layer(x).shape == (4, 5)

    def test_softmax_axis(self, rng):
        out = Softmax(axis=0)(Tensor(rng.normal(size=(4, 5))))
        assert np.allclose(out.data.sum(axis=0), 1.0)

    def test_dropout_train_vs_eval(self, rng):
        layer = Dropout(0.5, rng=rng)
        x = Tensor(np.ones((100, 100)))
        train_out = layer(x)
        assert (train_out.data == 0).any()
        layer.eval()
        assert np.allclose(layer(x).data, 1.0)

    def test_dropout_invalid_rate(self):
        with pytest.raises(ValueError):
            Dropout(1.5)
