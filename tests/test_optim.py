"""Tests of the optimizers and learning-rate schedulers."""

import numpy as np
import pytest

from repro.nn.module import Parameter
from repro.optim import SGD, Adam, AdamW, CosineAnnealingLR, MultiStepLR, StepLR, WarmupWrapper
from repro.tensor import Tensor


def quadratic_loss(parameter):
    return ((parameter - 3.0) ** 2).sum()


def train(optimizer, parameter, steps=200):
    for _ in range(steps):
        optimizer.zero_grad()
        loss = quadratic_loss(parameter)
        loss.backward()
        optimizer.step()
    return float(quadratic_loss(parameter).data)


class TestSGD:
    def test_plain_sgd_converges_on_quadratic(self):
        parameter = Parameter(np.zeros(4))
        assert train(SGD([parameter], lr=0.1), parameter) < 1e-6
        assert np.allclose(parameter.data, 3.0)

    def test_momentum_converges(self):
        parameter = Parameter(np.zeros(4))
        assert train(SGD([parameter], lr=0.05, momentum=0.9), parameter) < 1e-6

    def test_single_step_matches_manual_update(self):
        parameter = Parameter(np.array([1.0]))
        optimizer = SGD([parameter], lr=0.5)
        quadratic_loss(parameter).backward()
        optimizer.step()
        # gradient of (x-3)^2 at 1 is -4, so x <- 1 - 0.5 * (-4) = 3
        assert np.allclose(parameter.data, 3.0)

    def test_weight_decay_shrinks_parameters(self):
        parameter = Parameter(np.array([10.0]))
        optimizer = SGD([parameter], lr=0.1, weight_decay=0.5)
        parameter.grad = np.zeros(1)
        optimizer.step()
        assert parameter.data[0] < 10.0

    def test_nesterov_requires_momentum(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], lr=0.1, nesterov=True)

    def test_nesterov_converges(self):
        parameter = Parameter(np.zeros(3))
        assert train(SGD([parameter], lr=0.05, momentum=0.9, nesterov=True), parameter) < 1e-6

    def test_empty_parameters_rejected(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_invalid_lr(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], lr=0.0)

    def test_parameters_without_grad_are_skipped(self):
        used = Parameter(np.zeros(2))
        unused = Parameter(np.ones(2))
        optimizer = SGD([used, unused], lr=0.1)
        quadratic_loss(used).backward()
        optimizer.step()
        assert np.allclose(unused.data, 1.0)


class TestAdam:
    def test_converges_on_quadratic(self):
        parameter = Parameter(np.zeros(4))
        assert train(Adam([parameter], lr=0.1), parameter, steps=400) < 1e-4

    def test_adamw_decoupled_decay(self):
        parameter = Parameter(np.array([5.0]))
        optimizer = AdamW([parameter], lr=0.01, weight_decay=0.1)
        parameter.grad = np.zeros(1)
        optimizer.step()
        assert parameter.data[0] == pytest.approx(5.0 * (1 - 0.01 * 0.1))

    def test_invalid_betas(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.zeros(1))], betas=(1.0, 0.9))

    def test_first_step_size_is_bounded_by_lr(self):
        parameter = Parameter(np.array([0.0]))
        optimizer = Adam([parameter], lr=0.1)
        parameter.grad = np.array([100.0])
        optimizer.step()
        assert abs(parameter.data[0]) <= 0.1 + 1e-9


class TestGradClipping:
    def test_clip_reduces_norm(self):
        parameter = Parameter(np.zeros(3))
        optimizer = SGD([parameter], lr=0.1)
        parameter.grad = np.array([3.0, 4.0, 0.0])
        norm = optimizer.clip_grad_norm(1.0)
        assert norm == pytest.approx(5.0)
        assert np.linalg.norm(parameter.grad) == pytest.approx(1.0, rel=1e-6)

    def test_clip_noop_when_below_threshold(self):
        parameter = Parameter(np.zeros(2))
        optimizer = SGD([parameter], lr=0.1)
        parameter.grad = np.array([0.1, 0.1])
        optimizer.clip_grad_norm(10.0)
        assert np.allclose(parameter.grad, [0.1, 0.1])


class TestSchedulers:
    def _optimizer(self, lr=1.0):
        return SGD([Parameter(np.zeros(1))], lr=lr)

    def test_step_lr(self):
        optimizer = self._optimizer()
        scheduler = StepLR(optimizer, step_size=2, gamma=0.1)
        lrs = [scheduler.step() for _ in range(4)]
        assert lrs == pytest.approx([1.0, 0.1, 0.1, 0.01])

    def test_multistep_lr(self):
        optimizer = self._optimizer()
        scheduler = MultiStepLR(optimizer, milestones=[2, 4], gamma=0.5)
        lrs = [scheduler.step() for _ in range(5)]
        assert lrs == pytest.approx([1.0, 0.5, 0.5, 0.25, 0.25])

    def test_cosine_annealing_endpoints(self):
        optimizer = self._optimizer()
        scheduler = CosineAnnealingLR(optimizer, total_epochs=10, min_lr=0.0)
        values = [scheduler.step() for _ in range(10)]
        assert values[0] < 1.0
        assert values[-1] == pytest.approx(0.0, abs=1e-12)
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_warmup_wrapper(self):
        optimizer = self._optimizer()
        scheduler = WarmupWrapper(CosineAnnealingLR(optimizer, total_epochs=10), warmup_epochs=3)
        lrs = [scheduler.step() for _ in range(5)]
        assert lrs[0] == pytest.approx(1.0 / 3.0)
        assert lrs[1] == pytest.approx(2.0 / 3.0)
        assert lrs[2] == pytest.approx(1.0)
        assert lrs[3] < 1.0

    def test_invalid_arguments(self):
        optimizer = self._optimizer()
        with pytest.raises(ValueError):
            StepLR(optimizer, step_size=0)
        with pytest.raises(ValueError):
            CosineAnnealingLR(optimizer, total_epochs=0)
        with pytest.raises(ValueError):
            WarmupWrapper(CosineAnnealingLR(optimizer, total_epochs=5), warmup_epochs=-1)
