"""Tests of datasets, loaders, transforms and the synthetic generators."""

import numpy as np
import pytest

from repro.data import (
    ArrayDataset,
    Compose,
    DataLoader,
    FlattenImage,
    Normalize,
    RandomCrop,
    RandomHorizontalFlip,
    Subset,
    SyntheticImageConfig,
    SyntheticImageDataset,
    ToFloat,
    synthetic_cifar10,
    synthetic_cifar100,
    synthetic_mnist,
    train_test_split,
)


class TestArrayDataset:
    def test_basic_access(self, rng):
        images = rng.normal(size=(10, 1, 4, 4))
        labels = np.arange(10) % 3
        dataset = ArrayDataset(images, labels)
        assert len(dataset) == 10
        image, label = dataset[2]
        assert image.shape == (1, 4, 4)
        assert label == 2
        assert dataset.num_classes == 3
        assert dataset.image_shape == (1, 4, 4)

    def test_transform_applied(self, rng):
        dataset = ArrayDataset(rng.normal(size=(4, 1, 2, 2)), np.zeros(4),
                               transform=FlattenImage(), num_classes=1)
        image, _ = dataset[0]
        assert image.shape == (4,)

    def test_length_mismatch_rejected(self, rng):
        with pytest.raises(ValueError):
            ArrayDataset(rng.normal(size=(4, 1, 2, 2)), np.zeros(5))

    def test_subset_and_split(self, rng):
        dataset = ArrayDataset(rng.normal(size=(20, 1, 2, 2)), np.arange(20) % 4)
        subset = Subset(dataset, [0, 5, 7])
        assert len(subset) == 3
        assert subset.num_classes == 4
        train, test = train_test_split(dataset, test_fraction=0.25, rng=rng)
        assert len(train) == 15 and len(test) == 5

    def test_split_invalid_fraction(self, rng):
        dataset = ArrayDataset(rng.normal(size=(4, 1, 2, 2)), np.zeros(4))
        with pytest.raises(ValueError):
            train_test_split(dataset, test_fraction=1.5)


class TestDataLoader:
    def test_batches_cover_dataset(self, tiny_image_dataset):
        loader = DataLoader(tiny_image_dataset, batch_size=8, shuffle=True)
        seen = 0
        for images, labels in loader:
            assert images.shape[1:] == (3, 8, 8)
            assert images.shape[0] == labels.shape[0]
            seen += labels.shape[0]
        assert seen == len(tiny_image_dataset)
        assert len(loader) == 5

    def test_drop_last(self, tiny_image_dataset):
        loader = DataLoader(tiny_image_dataset, batch_size=16, drop_last=True, shuffle=False)
        batches = list(loader)
        assert len(batches) == 2
        assert all(images.shape[0] == 16 for images, _ in batches)

    def test_shuffle_determinism(self, tiny_image_dataset):
        loader_a = DataLoader(tiny_image_dataset, batch_size=4, rng=np.random.default_rng(3))
        loader_b = DataLoader(tiny_image_dataset, batch_size=4, rng=np.random.default_rng(3))
        for (a_images, _), (b_images, _) in zip(loader_a, loader_b):
            assert np.allclose(a_images, b_images)

    def test_invalid_batch_size(self, tiny_image_dataset):
        with pytest.raises(ValueError):
            DataLoader(tiny_image_dataset, batch_size=0)


class TestDataLoaderFastPath:
    """Array-backed datasets must batch via one gather, same results."""

    @staticmethod
    def _per_item_batches(dataset, batch_size, rng):
        indices = np.arange(len(dataset))
        rng.shuffle(indices)
        batches = []
        for start in range(0, len(indices), batch_size):
            chunk = indices[start:start + batch_size]
            images, labels = zip(*(dataset[int(i)] for i in chunk))
            batches.append((np.stack(images), np.asarray(labels, dtype=int)))
        return batches

    def test_fast_path_taken_for_array_datasets(self, tiny_image_dataset):
        loader = DataLoader(tiny_image_dataset, batch_size=8)
        assert loader._contiguous_arrays() is not None

    def test_fast_path_matches_per_item_loop(self, tiny_image_dataset):
        loader = DataLoader(tiny_image_dataset, batch_size=7,
                            rng=np.random.default_rng(11))
        expected = self._per_item_batches(tiny_image_dataset, 7,
                                          np.random.default_rng(11))
        batches = list(loader)
        assert len(batches) == len(expected)
        for (images, labels), (want_images, want_labels) in zip(batches, expected):
            assert np.array_equal(images, want_images)
            assert np.array_equal(labels, want_labels)
            assert labels.dtype == want_labels.dtype

    def test_transform_disables_fast_path(self, rng):
        dataset = ArrayDataset(rng.normal(size=(10, 1, 4, 4)),
                               np.arange(10) % 2,
                               transform=lambda image: image * 2.0)
        loader = DataLoader(dataset, batch_size=4, shuffle=False)
        assert loader._contiguous_arrays() is None
        images, _ = next(iter(loader))
        assert np.allclose(images, dataset.images[:4] * 2.0)

    def test_subset_uses_per_item_path(self, tiny_image_dataset):
        subset = Subset(tiny_image_dataset, [3, 1, 4, 1, 5])
        loader = DataLoader(subset, batch_size=2, shuffle=False)
        assert loader._contiguous_arrays() is None
        images, labels = next(iter(loader))
        assert np.array_equal(images[0], tiny_image_dataset[3][0])
        assert labels[0] == tiny_image_dataset[3][1]


class TestTransforms:
    def test_to_float_scales_integers(self):
        image = np.full((1, 2, 2), 255, dtype=np.uint8)
        assert np.allclose(ToFloat()(image), 1.0)

    def test_normalize(self, rng):
        image = rng.normal(size=(3, 4, 4))
        out = Normalize([1.0, 2.0, 3.0], [2.0, 2.0, 2.0])(image)
        assert np.allclose(out, (image - np.array([1, 2, 3]).reshape(3, 1, 1)) / 2.0)

    def test_normalize_zero_std_rejected(self):
        with pytest.raises(ValueError):
            Normalize([0.0], [0.0])

    def test_random_flip_probability_extremes(self, rng):
        image = rng.normal(size=(1, 3, 3))
        assert np.allclose(RandomHorizontalFlip(0.0)(image), image)
        assert np.allclose(RandomHorizontalFlip(1.0)(image), image[..., ::-1])

    def test_random_crop_preserves_shape(self, rng):
        image = rng.normal(size=(3, 8, 8))
        out = RandomCrop(2, rng=rng)(image)
        assert out.shape == (3, 8, 8)

    def test_compose(self, rng):
        pipeline = Compose([ToFloat(), FlattenImage()])
        out = pipeline(np.zeros((1, 2, 2), dtype=np.uint8))
        assert out.shape == (4,)


class TestSyntheticGenerators:
    def test_shapes_and_balance(self):
        train, test = synthetic_mnist(height=10, width=10, train_samples=100, test_samples=40, seed=0)
        assert train.images.shape == (100, 1, 10, 10)
        assert test.images.shape == (40, 1, 10, 10)
        assert train.num_classes == 10
        counts = np.bincount(train.labels, minlength=10)
        assert counts.min() >= 9  # balanced to within one sample

    def test_determinism(self):
        a_train, _ = synthetic_cifar10(height=8, width=8, train_samples=30, test_samples=10, seed=5)
        b_train, _ = synthetic_cifar10(height=8, width=8, train_samples=30, test_samples=10, seed=5)
        assert np.allclose(a_train.images, b_train.images)
        assert np.array_equal(a_train.labels, b_train.labels)

    def test_different_seeds_differ(self):
        a_train, _ = synthetic_mnist(height=8, width=8, train_samples=30, test_samples=10, seed=1)
        b_train, _ = synthetic_mnist(height=8, width=8, train_samples=30, test_samples=10, seed=2)
        assert not np.allclose(a_train.images, b_train.images)

    def test_cifar100_class_count(self):
        train, _ = synthetic_cifar100(height=8, width=8, train_samples=60, test_samples=20,
                                      num_classes=20, seed=0)
        assert train.num_classes == 20
        assert train.labels.max() == 19

    def test_classes_are_separable_by_nearest_prototype(self):
        """Nearest-prototype classification should beat chance by a wide margin."""
        config = SyntheticImageConfig(num_classes=5, channels=1, height=12, width=12,
                                      train_samples=100, test_samples=50, seed=3, jitter=1)
        factory = SyntheticImageDataset(config)
        _train, test = factory.splits()
        prototypes = factory.prototypes.reshape(5, -1)
        correct = 0
        for index in range(len(test)):
            image, label = test[index]
            distances = np.linalg.norm(prototypes - image.reshape(1, -1), axis=1)
            correct += int(distances.argmin() == label)
        assert correct / len(test) > 0.6

    def test_spatial_smoothness_gives_adjacent_pixel_correlation(self):
        """Vertically adjacent pixels must correlate more than distant pixels.

        This is the statistical property that makes spatial-interlace
        assignment better than spatial-symmetric in the paper (and in our
        Fig. 8 reproduction).
        """
        train, _ = synthetic_mnist(height=16, width=16, train_samples=200, test_samples=10, seed=0)
        images = train.images[:, 0]
        adjacent = np.corrcoef(images[:, :-1, :].reshape(len(images), -1).ravel(),
                               images[:, 1:, :].reshape(len(images), -1).ravel())[0, 1]
        flipped = images[:, ::-1, ::-1]
        distant = np.corrcoef(images.reshape(len(images), -1).ravel(),
                              flipped.reshape(len(images), -1).ravel())[0, 1]
        assert adjacent > 0.5
        assert adjacent > distant + 0.2

    def test_channel_correlation_present(self):
        """Class-level colour channels share a luminance component (what CL exploits)."""
        train, _ = synthetic_cifar10(height=12, width=12, train_samples=200, test_samples=10, seed=0)
        class_means = np.stack([train.images[train.labels == c].mean(axis=0) for c in range(10)])
        red = class_means[:, 0].ravel()
        green = class_means[:, 1].ravel()
        assert np.corrcoef(red, green)[0, 1] > 0.3

    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError):
            SyntheticImageConfig(num_classes=1)
        with pytest.raises(ValueError):
            SyntheticImageConfig(channel_correlation=2.0)
        with pytest.raises(ValueError):
            SyntheticImageConfig(train_samples=5, num_classes=10)
