"""End-to-end integration tests crossing several subsystems.

These are intentionally slower than unit tests (they train tiny CNNs) but they
exercise the same paths the benchmark harness uses: dataset generation, data
assignment, complex model construction, training, mutual learning, area
analysis and photonic deployment with non-idealities.
"""

import numpy as np
import pytest

from repro.assignment import get_scheme
from repro.core.area_analysis import compare_area, model_area_report
from repro.core.config import ExperimentConfig, TrainingConfig
from repro.core.deploy import deploy_linear_model
from repro.core.pipeline import OplixNet
from repro.core.training import evaluate_accuracy
from repro.photonics.noise import PhaseNoiseModel


def config_for(architecture: str, **overrides) -> ExperimentConfig:
    base = dict(
        name=f"integration-{architecture}",
        architecture=architecture,
        dataset="mnist" if architecture == "fcnn" else "cifar10",
        num_classes=10,
        image_size=(10, 10) if architecture == "fcnn" else (12, 12),
        channels=1 if architecture == "fcnn" else 3,
        assignment="SI" if architecture == "fcnn" else "CL",
        decoder="merge",
        depth=8,
        width_divider=4,
        lenet_kernel=3,
        lenet_padding=1,
        train_samples=240,
        test_samples=80,
        training=TrainingConfig(epochs=4, batch_size=32, learning_rate=0.05, seed=0),
        seed=0,
    )
    base.update(overrides)
    return ExperimentConfig(**base)


class TestFCNNEndToEnd:
    def test_split_fcnn_beats_chance_and_deploys_faithfully(self):
        pipeline = OplixNet(config_for("fcnn"))
        student, history = pipeline.train_student(mutual_learning=False)
        assert history.final_test_accuracy > 0.3    # 10 classes -> chance is 0.1

        deployed = deploy_linear_model(student)
        _train, test = pipeline.datasets()
        images = np.stack([test[i][0] for i in range(40)])
        labels = np.array([test[i][1] for i in range(40)])
        scheme = pipeline.student_scheme()
        optical_accuracy = float((deployed.classify(images, scheme) == labels).mean())
        software_predictions = []
        from repro.core.training import prepare_batch
        from repro.tensor import no_grad

        with no_grad():
            software_predictions = student(prepare_batch(images, scheme)).data.argmax(axis=1)
        assert np.array_equal(deployed.classify(images, scheme), software_predictions)
        assert optical_accuracy > 0.3

    def test_phase_noise_degrades_deployed_accuracy_gracefully(self):
        pipeline = OplixNet(config_for("fcnn"))
        student, _ = pipeline.train_student(mutual_learning=False)
        deployed = deploy_linear_model(student)
        _train, test = pipeline.datasets()
        images = np.stack([test[i][0] for i in range(60)])
        labels = np.array([test[i][1] for i in range(60)])
        scheme = pipeline.student_scheme()

        clean_accuracy = float((deployed.classify(images, scheme) == labels).mean())
        heavy_noise = deployed.with_noise(noise=PhaseNoiseModel(sigma=1.5,
                                                                rng=np.random.default_rng(0)))
        noisy_accuracy = float((heavy_noise.classify(images, scheme) == labels).mean())
        # phases scrambled by ~90 degrees destroy the computation
        assert noisy_accuracy < clean_accuracy
        mild_noise = deployed.with_noise(noise=PhaseNoiseModel(sigma=0.002,
                                                               rng=np.random.default_rng(0)))
        mild_accuracy = float((mild_noise.classify(images, scheme) == labels).mean())
        assert mild_accuracy >= clean_accuracy - 0.1

    def test_mutual_learning_student_close_to_teacher(self):
        pipeline = OplixNet(config_for("fcnn"))
        _student, result = pipeline.train_student(mutual_learning=True)
        assert result.student_test_accuracy > 0.3
        assert abs(result.student_test_accuracy - result.teacher_test_accuracy) < 0.35


class TestCNNEndToEnd:
    def test_lenet_channel_lossless_pipeline(self):
        pipeline = OplixNet(config_for("lenet5"))
        student, history = pipeline.train_student(mutual_learning=False)
        # the model must have learned: training accuracy well above the 10-class
        # chance level and test accuracy at least at chance (the dataset is tiny)
        assert history.train_accuracy[-1] > 0.2
        assert history.final_test_accuracy >= 0.125
        # at this heavily width-divided scale the relative head overhead is larger
        # than at paper scale, so the reduction is below the paper's 74.6%
        area = pipeline.area_summary()
        assert 0.6 < area["reduction"] < 0.8

    def test_resnet_channel_lossless_pipeline(self):
        pipeline = OplixNet(config_for("resnet", depth=8))
        student, history = pipeline.train_student(mutual_learning=False)
        assert history.train_accuracy[-1] > 0.2
        assert history.final_test_accuracy >= 0.125
        report = model_area_report(student)
        assert report.total_mzis > 0

    def test_scvnn_is_smaller_than_cvnn_for_every_architecture(self):
        for architecture in ("fcnn", "lenet5", "resnet"):
            pipeline = OplixNet(config_for(architecture))
            comparison = compare_area(pipeline.build_student(), pipeline.build_baseline_cvnn())
            assert comparison["reduction"] > 0.5

    def test_cvnn_reference_trains_with_conventional_assignment(self):
        pipeline = OplixNet(config_for("lenet5"))
        model, history = pipeline.train_reference("cvnn")
        accuracy = evaluate_accuracy(model, pipeline.loaders()[1], get_scheme("conventional"))
        assert accuracy == pytest.approx(history.final_test_accuracy, abs=1e-9)
        assert accuracy > 0.2
