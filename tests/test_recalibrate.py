"""Serving-layer robustness tests: chaos-mode scenario lanes, drift
detection + zero-downtime recalibration, request deadlines, and the
worker-restart budget failing fast once exhausted.

Process spawns are expensive, so every test builds the smallest service
that can exhibit its behavior (usually one replica).
"""

import os
import signal
import threading
import time

import numpy as np
import pytest

import repro
from repro.assignment import get_scheme
from repro.models import ComplexFCNN
from repro.serve import (
    DriftInjector,
    RecalibrationManager,
    ShardedInferenceService,
    WorkerError,
    WorkerTimeoutError,
)

IMAGE_SHAPE = (1, 4, 4)


def tiny_fcnn(seed: int = 0) -> ComplexFCNN:
    return ComplexFCNN(8, (6,), 3, decoder="merge",
                       rng=np.random.default_rng(seed))


class TestScenarioLane:
    """Chaos mode: a lane deployed with a hardware scenario degrades on a
    shared clock, and every replica degrades identically."""

    def test_chaos_lane_clean_at_clock_zero_then_drifts(self):
        model = tiny_fcnn()
        images = np.random.default_rng(23).normal(size=(4, *IMAGE_SHAPE))
        expected = repro.compile(model).predict_logits(images, get_scheme("SI"))
        scenario = {"name": "thermal_drift",
                    "params": {"sigma": 0.5, "tau_s": 30.0, "seed": 0}}
        with ShardedInferenceService(workers=2, max_batch=8,
                                     max_latency_s=0.001) as service:
            service.deploy("fcnn", model, "SI", image_shape=IMAGE_SHAPE,
                           scenario=scenario)
            # scenario clock starts at zero: a drift lane serves clean logits
            assert np.abs(service.logits("fcnn", images) - expected).max() <= 1e-10

            injector = DriftInjector(service, "fcnn")
            with pytest.raises(ValueError, match="dt"):
                injector.advance(-1.0)
            injector.advance(90.0)
            first = service.logits("fcnn", images)
            assert np.abs(first - expected).max() > 1e-3
            # replicas replay the same walk: at a fixed clock the degraded
            # lane is deterministic no matter which replica answers
            for _ in range(3):
                assert np.array_equal(service.logits("fcnn", images), first)
            assert injector.scenario_time() == 90.0
            stats = service.stats()["fcnn"]
            assert all(replica["scenario"] == "thermal_drift"
                       for replica in stats["replicas"].values())

    def test_injector_requires_a_scenario_lane(self):
        model = tiny_fcnn()
        with ShardedInferenceService(workers=1,
                                     max_latency_s=0.001) as service:
            service.deploy("fcnn", model, "SI", image_shape=IMAGE_SHAPE)
            with pytest.raises(ValueError, match="scenario"):
                DriftInjector(service, "fcnn")


class TestRecalibration:
    def test_drift_detected_and_healed_with_traffic_flowing(self):
        """The acceptance loop: injected thermal drift measurably degrades
        accuracy; the manager detects it from logit statistics alone, heals
        by drain-then-swap redeploy, restores accuracy to within 1% of
        clean, and no request fails at any point."""
        from repro.experiments.scenarios import run_drift_recalibration

        images = np.random.default_rng(3).normal(size=(24, *IMAGE_SHAPE))
        summary = run_drift_recalibration(
            tiny_fcnn(), "SI", IMAGE_SHAPE, images, sigma=0.5, tau_s=30.0,
            drift_s=120.0, workers=2, threshold=0.15, min_batches=2,
            observe_batches=4, seed=0)
        assert summary["clean_accuracy"] == 1.0
        assert summary["degraded_accuracy"] < summary["clean_accuracy"] - 0.05
        assert summary["detected"]
        assert summary["detection_score"] > 0.15
        assert summary["recalibrations"] == 1
        assert summary["recalibration_latency_s"] > 0
        assert summary["recalibrated_accuracy"] >= summary["clean_accuracy"] - 0.01
        assert summary["traffic"]["completed"] > 0
        assert summary["traffic"]["failed"] == 0

    def test_clean_lane_never_trips_the_monitor(self):
        model = tiny_fcnn()
        images = np.random.default_rng(5).normal(size=(8, *IMAGE_SHAPE))
        with ShardedInferenceService(workers=1,
                                     max_latency_s=0.001) as service:
            service.deploy("fcnn", model, "SI", image_shape=IMAGE_SHAPE)
            manager = RecalibrationManager(service, "fcnn", images,
                                           threshold=0.25, min_batches=2)
            for _ in range(4):
                service.logits("fcnn", images)
            assert manager.drift_score() < 0.01
            assert not manager.drifted()
            status = manager.check()
            assert status["recalibrations"] == 0
            # status is surfaced through the lane's stats for `repro serve`
            assert service.stats()["fcnn"]["drift"]["batches"] >= 4

    def test_submits_during_swap_all_complete_with_correct_logits(self):
        """Requests racing a recalibration redeploy land on whichever lane
        incarnation admits them -- but every one resolves, correctly."""
        model = tiny_fcnn()
        images = np.random.default_rng(29).normal(size=(2, *IMAGE_SHAPE))
        expected = repro.compile(model).predict_logits(images, get_scheme("SI"))
        with ShardedInferenceService(workers=1, max_batch=8,
                                     max_latency_s=0.001) as service:
            service.deploy("fcnn", model, "SI", image_shape=IMAGE_SHAPE)
            swap_done = threading.Event()

            def swap():
                service.redeploy("fcnn")
                swap_done.set()

            thread = threading.Thread(target=swap)
            results = []
            thread.start()
            try:
                while not swap_done.is_set() or len(results) < 4:
                    results.append(service.submit("fcnn", images).result(timeout=60))
            finally:
                thread.join(timeout=60)
            assert len(results) >= 4
            for logits in results:
                assert np.abs(logits - expected).max() <= 1e-10

    def test_redeploy_requires_recorded_deploy_args(self):
        with ShardedInferenceService(workers=1,
                                     max_latency_s=0.001) as service:
            with pytest.raises(KeyError):
                service.redeploy("ghost")

    def test_validation(self):
        with ShardedInferenceService(workers=1,
                                     max_latency_s=0.001) as service:
            images = np.zeros((1, *IMAGE_SHAPE))
            # argument validation fires before any lane lookup
            with pytest.raises(ValueError, match="ewma_alpha"):
                RecalibrationManager(service, "fcnn", images, ewma_alpha=0.0)
            with pytest.raises(ValueError, match="threshold"):
                RecalibrationManager(service, "fcnn", images, threshold=0.0)


class TestRequestDeadline:
    def test_hung_worker_times_out_and_slot_respawns(self):
        """A stopped (alive but unresponsive) worker can't be caught by
        death detection; the per-request deadline kills it, fails the
        request with WorkerTimeoutError, and the restart budget respawns
        the slot."""
        model = tiny_fcnn()
        images = np.random.default_rng(31).normal(size=(2, *IMAGE_SHAPE))
        expected = repro.compile(model).predict_logits(images, get_scheme("SI"))
        with ShardedInferenceService(workers=1, max_batch=8,
                                     max_latency_s=0.001,
                                     max_worker_restarts=1,
                                     request_timeout_s=3.0) as service:
            service.deploy("fcnn", model, "SI", image_shape=IMAGE_SHAPE)
            [replica] = service.lane("fcnn").replicas
            os.kill(replica.process.pid, signal.SIGSTOP)
            started = time.monotonic()
            with pytest.raises(WorkerTimeoutError, match="did not answer"):
                service.logits("fcnn", images)
            assert time.monotonic() - started < 30.0
            # the deadline counts against the same budget as a crash
            assert np.abs(service.logits("fcnn", images) - expected).max() <= 1e-10
            stats = service.stats()["fcnn"]
            assert stats["restarts_used"] == 1
            [replica_stats] = stats["replicas"].values()
            assert replica_stats["alive"] and replica_stats["restarts"] == 1

    def test_timeout_error_is_a_worker_error(self):
        assert issubclass(WorkerTimeoutError, WorkerError)

    def test_request_timeout_validation(self):
        with pytest.raises(ValueError, match="request_timeout_s"):
            ShardedInferenceService(request_timeout_s=0.0)


class TestRestartBudgetExhaustion:
    def _kill_replica(self, service, key="fcnn"):
        lane = service.lane(key)
        [replica] = lane.replicas
        pid = replica.process.pid
        os.kill(pid, signal.SIGKILL)
        replica.process.join(timeout=10)
        assert not replica.process.is_alive()
        return pid

    def test_exhausted_budget_fails_fast_not_hangs(self):
        model = tiny_fcnn()
        sample = np.random.default_rng(37).normal(size=IMAGE_SHAPE)
        with ShardedInferenceService(workers=1, max_batch=8,
                                     max_latency_s=0.001,
                                     max_worker_restarts=1) as service:
            service.deploy("fcnn", model, "SI", image_shape=IMAGE_SHAPE)
            # first crash consumes the budget; the slot comes back
            self._kill_replica(service)
            with pytest.raises(WorkerError, match="died mid-request"):
                service.logits("fcnn", sample)
            service.logits("fcnn", sample)
            # second crash exhausts it: the slot stays dead and every
            # subsequent request fails fast instead of hanging
            self._kill_replica(service)
            with pytest.raises(WorkerError, match="died mid-request"):
                service.logits("fcnn", sample)
            for _ in range(2):
                started = time.monotonic()
                with pytest.raises(WorkerError):
                    service.logits("fcnn", sample)
                assert time.monotonic() - started < 30.0
            stats = service.stats()["fcnn"]
            assert stats["restarts_used"] == 1
            assert stats["max_restarts"] == 1
            [replica_stats] = stats["replicas"].values()
            assert not replica_stats["alive"]
            assert replica_stats["restarts"] == 1


class TestServingStorePrune:
    def test_deploy_prunes_store_to_bound(self, tmp_path):
        from repro.store import ArtifactStore

        store = ArtifactStore(tmp_path / "store")
        for seed in (1, 2):
            repro.compile(tiny_fcnn(seed), store=store)
        assert len(store.keys()) == 2
        with ShardedInferenceService(workers=1, max_latency_s=0.001,
                                     store_path=str(tmp_path / "store"),
                                     store_prune_max_entries=1) as service:
            service.deploy("fcnn", tiny_fcnn(0), "SI", image_shape=IMAGE_SHAPE)
            assert len(store.keys()) == 1
