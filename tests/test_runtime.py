"""Tests of the plan-based executor (:mod:`repro.core.runtime`).

The acceptance bar: for FCNN, LeNet and ResNet programs (all five decoder
heads) the :class:`ExecutionPlan` must match the kept node-walk reference to
1e-12.  The rest covers the plan compiler's moving parts -- slot reuse,
eager dense fusion, the electronic-affine peephole, buffer-pool safety and
the interaction with noise/quantization ensembles.
"""

import numpy as np
import pytest

import repro
from repro.assignment import get_scheme
from repro.core.compile import CompileOptions
from repro.core.graph_ir import (
    INPUT,
    ElectronicActivation,
    ElectronicAdd,
    ElectronicBatchNorm,
    GraphNode,
    GraphProgram,
)
from repro.core.runtime import (
    AffineInstruction,
    CallInstruction,
    ChainInstruction,
    ConvInstruction,
    ExecutionPlan,
    MatmulInstruction,
    PlanOptions,
    compile_plan,
)
from repro.models import ComplexFCNN
from repro.photonics.noise import PhaseNoiseModel
from tests.test_compile import DECODERS, tiny_lenet, tiny_resnet

PARITY = 1e-12


def encoded_light(program, images, scheme):
    return program.encode_images(images, scheme)


def models_under_test(rng, decoder):
    yield "fcnn", ComplexFCNN(18, (10,), 4, decoder=decoder, rng=rng), "SI", (5, 1, 6, 6)
    yield "lenet", tiny_lenet(rng, decoder=decoder), "CL", (4, 3, 12, 12)
    yield "resnet", tiny_resnet(rng, decoder=decoder), "CL", (3, 3, 8, 8)


class TestPlanParity:
    @pytest.mark.parametrize("decoder", DECODERS)
    def test_plan_matches_node_walk_on_all_models_and_heads(self, decoder, rng):
        for name, model, scheme_key, shape in models_under_test(rng, decoder):
            scheme = get_scheme(scheme_key)
            program = repro.compile(model)
            signal = encoded_light(program, rng.normal(size=shape), scheme)
            walk = program.graph.forward_reference(signal)
            planned = program.plan().execute(signal)
            assert np.abs(walk - planned).max() <= PARITY, (name, decoder)

    def test_repeated_execution_is_stable(self, rng):
        # pooled interior buffers must not leak state between calls
        scheme = get_scheme("CL")
        program = repro.compile(tiny_resnet(rng))
        first_images = rng.normal(size=(4, 3, 8, 8))
        second_images = rng.normal(size=(2, 3, 8, 8))     # different batch size
        first = program.predict_logits(first_images, scheme)
        second = program.predict_logits(second_images, scheme)
        assert np.allclose(program.predict_logits(first_images, scheme),
                           first, atol=0)
        assert np.allclose(program.predict_logits(second_images, scheme),
                           second, atol=0)

    def test_output_never_aliases_pooled_storage(self, rng):
        scheme = get_scheme("SI")
        program = repro.compile(ComplexFCNN(18, (10,), 4, decoder="merge", rng=rng))
        signal = encoded_light(program, rng.normal(size=(3, 1, 6, 6)), scheme)
        first = program.forward_signals(signal)
        kept = first.copy()
        program.forward_signals(encoded_light(
            program, rng.normal(size=(3, 1, 6, 6)), scheme))
        assert np.array_equal(first, kept)

    def test_conv_output_never_aliases_pooled_storage(self, rng):
        # the reshape back to feature maps can be a view of the matmul
        # buffer, so a conv-output program must not pool its last instruction
        from repro.core.lowering import lower_complex_conv2d
        from repro.nn.complex import ComplexConv2d

        stage = lower_complex_conv2d(ComplexConv2d(2, 3, 3, rng=rng), "conv")
        graph = GraphProgram(nodes=[GraphNode("conv", stage, (INPUT,))],
                             output="conv", readout=lambda s: s, num_classes=3)
        def signal():
            return rng.normal(size=(2, 2, 6, 6)) + 1j * rng.normal(size=(2, 2, 6, 6))

        first = graph.forward(signal())
        kept = first.copy()
        graph.forward(signal())
        assert np.array_equal(first, kept)

    def test_flatten_output_over_conv_never_aliases_pool(self, rng):
        # FlattenStage returns a reshape *view*, so a conv whose result
        # reaches the output through a flatten chain must not pool either
        from repro.core.lowering import FlattenStage, lower_complex_conv2d
        from repro.nn.complex import ComplexConv2d

        stage = lower_complex_conv2d(ComplexConv2d(2, 3, 3, rng=rng), "conv")
        graph = GraphProgram(
            nodes=[GraphNode("conv", stage, (INPUT,)),
                   GraphNode("flat", FlattenStage(), ("conv",))],
            output="flat", readout=lambda s: s, num_classes=3)

        def signal():
            return rng.normal(size=(2, 2, 3, 3)) + 1j * rng.normal(size=(2, 2, 3, 3))

        first = graph.forward(signal())        # 1x1 maps: reshape stays a view
        kept = first.copy()
        graph.forward(signal())
        assert np.array_equal(first, kept)

    def test_plan_rebuilds_after_in_place_phase_update(self, rng):
        # update_phases is a documented in-place mutation API; plans bake
        # phases into dense matrices, so forward() must notice and rebuild
        scheme = get_scheme("SI")
        program = repro.compile(ComplexFCNN(18, (10,), 4, decoder="merge", rng=rng))
        signal = encoded_light(program, rng.normal(size=(3, 1, 6, 6)), scheme)
        before = program.forward_signals(signal)     # caches the plan
        stale_plan = program.plan()
        mesh = program.stages[0].layer.photonic_matrix.left_mesh
        mesh.update_phases(thetas=mesh.thetas * 0.5)
        assert stale_plan.is_stale()
        after = program.forward_signals(signal)      # rebuilds the plan
        reference = program.graph.forward_reference(signal)
        assert np.abs(after - reference).max() <= PARITY
        assert not np.allclose(after, before)
        assert program.plan() is not stale_plan
        assert not program.plan().is_stale()

    def test_unfused_plan_matches_fused(self, rng):
        scheme = get_scheme("CL")
        program = repro.compile(tiny_lenet(rng))
        signal = encoded_light(program, rng.normal(size=(3, 3, 12, 12)), scheme)
        fused = program.plan().execute(signal)
        plain = program.plan(PlanOptions(fuse_matrices=False, fuse_affine=False,
                                         reuse_buffers=False)).execute(signal)
        assert np.abs(fused - plain).max() <= PARITY

    def test_noise_ensemble_plan_matches_walk(self, rng):
        scheme = get_scheme("CL")
        program = repro.compile(tiny_resnet(rng))
        noisy = program.with_noise(noise=PhaseNoiseModel.seeded(0.02, seed=5), trials=3)
        signal = encoded_light(noisy, rng.normal(size=(2, 3, 8, 8)), scheme)
        walk = noisy.graph.forward_reference(signal)
        planned = noisy.plan().execute(signal)
        assert walk.shape == planned.shape           # (trials, batch, features)
        assert np.abs(walk - planned).max() <= PARITY
        # trials-batched meshes must not have been folded to dense matrices
        assert noisy.plan().fused_matmuls == 0


class TestPlanCompilation:
    def test_chain_reuses_one_slot(self, rng):
        program = repro.compile(tiny_lenet(rng))
        plan = program.plan()
        assert plan.slot_count == 1                   # pure chain: every value dies
        assert plan.output_slot == 0

    def test_fanout_needs_extra_slots(self, rng):
        plan = repro.compile(tiny_resnet(rng)).plan()
        assert plan.slot_count >= 2                   # skip branches stay live

    def test_dense_stages_fold_to_matmuls(self, rng):
        plan = repro.compile(tiny_lenet(rng)).plan()
        kinds = [type(instruction) for instruction in plan.instructions]
        assert kinds.count(ConvInstruction) == 2
        assert kinds.count(MatmulInstruction) == 3
        assert plan.fused_matmuls == 5

    def test_column_backend_stages_stay_unfused(self, rng):
        program = repro.compile(tiny_lenet(rng),
                                options=CompileOptions(backend="column"))
        plan = program.plan()
        assert plan.fused_matmuls == 0
        # unfused linear mesh stages lower to the explicit chain-path
        # instruction (native kernel when loaded, column program otherwise);
        # everything else stays on the generic call
        assert all(isinstance(instruction, (CallInstruction, ChainInstruction))
                   for instruction in plan.instructions)
        assert plan.chain_stages > 0
        assert any(isinstance(instruction, ChainInstruction)
                   for instruction in plan.instructions)

    def test_plan_is_cached_until_options_differ(self, rng):
        program = repro.compile(tiny_lenet(rng))
        assert program.plan() is program.plan()
        fresh = program.plan(PlanOptions(fuse_matrices=False))
        assert fresh is not program.plan()

    def test_describe_mentions_instructions(self, rng):
        plan = repro.compile(tiny_lenet(rng)).plan()
        text = plan.describe()
        assert "instructions" in text and "buffer slots" in text


class TestAffinePeephole:
    @staticmethod
    def _affine(scale, shift, spatial=False):
        scale = np.asarray(scale, dtype=float)
        shift = np.asarray(shift, dtype=float)
        return ElectronicBatchNorm(real_scale=scale, real_shift=shift,
                                   imag_scale=scale * 0.5, imag_shift=shift - 1.0,
                                   spatial=spatial)

    def _program(self, nodes, output):
        return GraphProgram(nodes=nodes, output=output, readout=lambda s: s,
                            num_classes=2)

    def test_adjacent_affines_fuse_to_one_instruction(self, rng):
        first = self._affine([2.0, 3.0], [0.5, -0.5])
        second = self._affine([0.25, 4.0], [1.0, 2.0])
        graph = self._program([GraphNode("bn1", first, (INPUT,)),
                               GraphNode("bn2", second, ("bn1",))], "bn2")
        plan = graph.plan()
        assert plan.instruction_count == 1
        assert isinstance(plan.instructions[0], AffineInstruction)
        assert plan.fused_affine_chains == 1
        signal = rng.normal(size=(3, 2)) + 1j * rng.normal(size=(3, 2))
        assert np.abs(graph.forward_reference(signal)
                      - plan.execute(signal)).max() <= PARITY

    def test_triple_chain_fuses_fully(self, rng):
        nodes = [GraphNode("bn1", self._affine([2.0], [0.1]), (INPUT,)),
                 GraphNode("bn2", self._affine([3.0], [0.2]), ("bn1",)),
                 GraphNode("bn3", self._affine([0.5], [0.3]), ("bn2",))]
        graph = self._program(nodes, "bn3")
        plan = graph.plan()
        assert plan.instruction_count == 1
        signal = rng.normal(size=(4, 1)) + 1j * rng.normal(size=(4, 1))
        assert np.abs(graph.forward_reference(signal)
                      - plan.execute(signal)).max() <= PARITY

    def test_fanned_out_affine_does_not_fuse(self, rng):
        # bn1 feeds both bn2 and the skip add: composing would corrupt the skip
        nodes = [GraphNode("bn1", self._affine([2.0, 1.5], [0.1, 0.0]), (INPUT,)),
                 GraphNode("bn2", self._affine([3.0, 0.5], [0.2, 1.0]), ("bn1",)),
                 GraphNode("add", ElectronicAdd(), ("bn2", "bn1"))]
        graph = self._program(nodes, "add")
        plan = graph.plan()
        assert plan.fused_affine_chains == 0
        assert plan.instruction_count == 3
        signal = rng.normal(size=(2, 2)) + 1j * rng.normal(size=(2, 2))
        assert np.abs(graph.forward_reference(signal)
                      - plan.execute(signal)).max() <= PARITY

    def test_output_affine_chain_remaps_output(self, rng):
        # the fused-away node was the program output; the plan must return
        # the merged node's value
        nodes = [GraphNode("bn1", self._affine([2.0], [0.5]), (INPUT,)),
                 GraphNode("bn2", self._affine([0.5], [0.25]), ("bn1",))]
        graph = self._program(nodes, "bn2")
        signal = rng.normal(size=(3, 1)) + 1j * rng.normal(size=(3, 1))
        assert np.abs(graph.forward_reference(signal)
                      - graph.plan().execute(signal)).max() <= PARITY

    def test_mixed_layouts_do_not_fuse(self, rng):
        spatial = ElectronicBatchNorm(real_scale=np.ones(2), real_shift=np.zeros(2),
                                      imag_scale=np.ones(2), imag_shift=np.zeros(2),
                                      spatial=True)
        flat = self._affine([1.0, 2.0], [0.0, 0.1], spatial=False)
        graph = self._program([GraphNode("bn1", spatial, (INPUT,)),
                               GraphNode("bn2", flat, ("bn1",))], "bn2")
        assert graph.plan().fused_affine_chains == 0


class TestGraphForwardWrapper:
    def test_forward_is_plan_backed(self, rng):
        scheme = get_scheme("CL")
        program = repro.compile(tiny_lenet(rng))
        signal = encoded_light(program, rng.normal(size=(3, 3, 12, 12)), scheme)
        assert np.abs(program.graph.forward(signal)
                      - program.graph.forward_reference(signal)).max() <= PARITY

    def test_generic_graphs_still_execute(self, rng):
        # hand-built graphs with only electronic ops go through CallInstruction
        graph = GraphProgram(
            nodes=[GraphNode("act", ElectronicActivation(), (INPUT,)),
                   GraphNode("add", ElectronicAdd(), ("act", INPUT))],
            output="add", readout=lambda s: s, num_classes=2)
        signal = rng.normal(size=(3, 4)) + 1j * rng.normal(size=(3, 4))
        assert np.abs(graph.forward(signal)
                      - graph.forward_reference(signal)).max() <= PARITY

    def test_plan_execute_callable_alias(self, rng):
        program = repro.compile(ComplexFCNN(8, (6,), 3, decoder="merge", rng=rng))
        plan = program.plan()
        assert isinstance(plan, ExecutionPlan)
        signal = (rng.normal(size=(2, 8)) + 1j * rng.normal(size=(2, 8)))
        assert np.array_equal(plan(signal), plan.execute(signal))


class TestCompilePlanFunction:
    def test_compile_plan_defaults(self, rng):
        program = repro.compile(tiny_lenet(rng))
        plan = compile_plan(program.graph)
        assert plan.options == PlanOptions()
        assert plan.instruction_count == len(program.graph.nodes)
