"""Tests of the multi-process sharded inference service.

Process spawns are expensive (each worker imports the stack and compiles its
program), so most tests share one module-scoped two-replica service; the
lifecycle-sensitive cases (admission control, slab unlinking, drain-then-swap
redeploys) build their own small services.  Sharded results are parity-pinned
against the in-process :class:`PhotonicInferenceService` reference path.
"""

import asyncio
import threading

import numpy as np
import pytest

import repro
from repro.assignment import get_scheme
from repro.models import ComplexFCNN
from repro.serve import (
    PhotonicInferenceService,
    ServiceOverloadedError,
    ShardedInferenceService,
    SlabRing,
    WorkerError,
    segment_exists,
)

IMAGE_SHAPE = (1, 4, 4)      # SI assignment halves 16 pixels -> 8 complex features


def tiny_fcnn(seed: int = 0) -> ComplexFCNN:
    return ComplexFCNN(8, (6,), 3, decoder="merge",
                       rng=np.random.default_rng(seed))


@pytest.fixture(scope="module")
def shard_service():
    """A running 2-replica service plus the in-process reference logits."""
    model = tiny_fcnn()
    with PhotonicInferenceService(max_latency_s=0.001) as reference:
        reference.deploy("fcnn", model, get_scheme("SI"))
        images = np.random.default_rng(7).normal(size=(6, *IMAGE_SHAPE))
        expected = reference.logits("fcnn", images)
    service = ShardedInferenceService(workers=2, max_batch=8,
                                      max_latency_s=0.002)
    service.deploy("fcnn", model, "SI", image_shape=IMAGE_SHAPE)
    yield service, model, images, expected
    service.close()


class TestSlabRing:
    def test_lease_release_and_unlink(self):
        ring = SlabRing(slots=2, input_elements=16, output_elements=4)
        names = ring.names
        assert all(segment_exists(name) for name in names)
        first = ring.lease(timeout=1)
        second = ring.lease(timeout=1)
        with pytest.raises(TimeoutError):
            ring.lease(timeout=0.01)
        shape = first.write_input(np.arange(8.0).reshape(2, 4))
        assert shape == (2, 4)
        assert np.array_equal(first.input_view((2, 4)),
                              np.arange(8.0).reshape(2, 4))
        with pytest.raises(ValueError, match="overflow"):
            first.input_view((5, 4))
        ring.release(first)
        assert ring.lease(timeout=1) is first        # recycled
        ring.release(second)
        ring.close_and_unlink()
        ring.close_and_unlink()                      # idempotent
        assert all(not segment_exists(name) for name in names)


class TestShardedService:
    def test_logits_match_in_process_reference(self, shard_service):
        service, _model, images, expected = shard_service
        got = service.logits("fcnn", images)
        assert np.abs(got - expected).max() <= 1e-10
        labels = service.classify("fcnn", images)
        assert np.array_equal(labels, expected.argmax(axis=-1))

    def test_single_sample_is_squeezed(self, shard_service):
        service, _model, images, expected = shard_service
        logits = service.logits("fcnn", images[0])
        assert logits.shape == expected[0].shape
        assert np.abs(logits - expected[0]).max() <= 1e-10

    def test_concurrent_clients_get_their_own_rows(self, shard_service):
        service, _model, images, expected = shard_service
        results = [None] * len(images)

        def client(worker):
            for index in range(worker, len(images), 3):
                results[index] = service.submit("fcnn", images[index:index + 1]) \
                                        .result(timeout=60)

        threads = [threading.Thread(target=client, args=(w,)) for w in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        for index in range(len(images)):
            assert np.abs(results[index] - expected[index:index + 1]).max() <= 1e-10

    def test_routing_spreads_over_replicas(self, shard_service):
        service, _model, images, _expected = shard_service
        futures = [service.submit("fcnn", images[index:index + 1])
                   for index in range(6)]
        for future in futures:
            future.result(timeout=60)
        per_replica = service.stats()["fcnn"]["replicas"]
        assert len(per_replica) == 2
        # least-outstanding routing with a round-robin tie-break must not
        # starve a replica under back-to-back traffic
        assert all(stats["requests"] >= 1 for stats in per_replica.values())
        assert all(stats["outstanding"] == 0 for stats in per_replica.values())

    def test_async_frontend(self, shard_service):
        service, _model, images, expected = shard_service

        async def drive():
            logits, labels = await asyncio.gather(
                service.logits_async("fcnn", images),
                service.classify_async("fcnn", images))
            return logits, labels

        logits, labels = asyncio.run(drive())
        assert np.abs(logits - expected).max() <= 1e-10
        assert np.array_equal(labels, expected.argmax(axis=-1))

    def test_invalid_submissions_rejected(self, shard_service):
        service, _model, images, _expected = shard_service
        with pytest.raises(KeyError, match="deploy"):
            service.submit("ghost", images)
        with pytest.raises(ValueError, match="zero-sample"):
            service.submit("fcnn", np.zeros((0, *IMAGE_SHAPE)))
        with pytest.raises(ValueError, match="slab capacity"):
            service.submit("fcnn", np.zeros((9, *IMAGE_SHAPE)))  # max_batch=8
        with pytest.raises(ValueError, match="sample"):
            service.submit("fcnn", np.zeros((4, 4)))

    def test_pending_counters_return_to_zero(self, shard_service):
        service, _model, images, _expected = shard_service
        futures = [service.submit("fcnn", images) for _ in range(3)]
        for future in futures:
            future.result(timeout=60)
        lane_stats = service.stats()["fcnn"]
        assert lane_stats["pending_samples"] == 0

    def test_invalid_construction_rejected(self):
        with pytest.raises(ValueError, match="workers"):
            ShardedInferenceService(workers=0)


class TestLifecycle:
    def test_admission_control_and_slab_unlink(self):
        # one replica, a long flush window and a 2-sample admission bound:
        # the first two single-sample requests are admitted and sit in the
        # flush window, the third must fast-fail
        service = ShardedInferenceService(workers=1, max_batch=8,
                                          max_latency_s=0.25,
                                          max_queue_samples=2)
        try:
            model = tiny_fcnn()
            service.deploy("fcnn", model, "SI", image_shape=IMAGE_SHAPE)
            sample = np.zeros((1, *IMAGE_SHAPE))
            admitted = [service.submit("fcnn", sample), service.submit("fcnn", sample)]
            with pytest.raises(ServiceOverloadedError, match="overloaded"):
                service.submit("fcnn", sample)
            for future in admitted:
                future.result(timeout=60)
            # the bound frees as futures resolve
            service.submit("fcnn", sample).result(timeout=60)
            assert service.stats()["fcnn"]["rejected"] == 1
            names = service.slab_names("fcnn")
            assert all(segment_exists(name) for name in names)
        finally:
            assert service.close() is True
        # shutdown must unlink every shared-memory slab (no /dev/shm leaks)
        assert all(not segment_exists(name) for name in names)

    def test_redeploy_is_drain_then_swap(self):
        model = tiny_fcnn()
        images = np.random.default_rng(11).normal(size=(2, *IMAGE_SHAPE))
        with ShardedInferenceService(workers=1, max_batch=8,
                                     max_latency_s=0.1) as service:
            service.deploy("fcnn", model, "SI", image_shape=IMAGE_SHAPE)
            old_slabs = service.slab_names("fcnn")
            old_pids = [stats["pid"] for stats
                        in service.stats()["fcnn"]["replicas"].values()]
            # a request sitting in the old lane's flush window when the
            # redeploy lands must still resolve (drain before teardown)
            in_flight = service.submit("fcnn", images)
            service.deploy("fcnn", model, "SI", image_shape=IMAGE_SHAPE)
            assert in_flight.result(timeout=60) is not None
            # old workers and slabs are gone, new lane serves traffic
            assert all(not segment_exists(name) for name in old_slabs)
            new_pids = [stats["pid"] for stats
                        in service.stats()["fcnn"]["replicas"].values()]
            assert set(new_pids).isdisjoint(old_pids)
            expected = repro.compile(model).predict_logits(images, get_scheme("SI"))
            assert np.abs(service.logits("fcnn", images) - expected).max() <= 1e-10


class TestWorkerAutoRestart:
    def _kill_replica(self, service, key="fcnn"):
        """SIGKILL the lane's only worker process; returns its pid."""
        import os
        import signal
        import time

        lane = service.lane(key)
        [replica] = lane.replicas
        pid = replica.process.pid
        os.kill(pid, signal.SIGKILL)
        replica.process.join(timeout=10)
        assert not replica.process.is_alive()
        return pid

    def test_crashed_replica_respawns_and_serves(self):
        model = tiny_fcnn()
        images = np.random.default_rng(13).normal(size=(2, *IMAGE_SHAPE))
        expected = repro.compile(model).predict_logits(images, get_scheme("SI"))
        with ShardedInferenceService(workers=1, max_batch=8,
                                     max_latency_s=0.001,
                                     max_worker_restarts=2) as service:
            service.deploy("fcnn", model, "SI", image_shape=IMAGE_SHAPE)
            old_pid = self._kill_replica(service)
            # the request in flight when the crash surfaces still fails
            # loudly, with the worker's death in the message
            with pytest.raises(WorkerError, match="died mid-request"):
                service.logits("fcnn", images)
            # ...but the lane respawned the slot: new pid, served traffic
            assert np.abs(service.logits("fcnn", images) - expected).max() <= 1e-10
            stats = service.stats()["fcnn"]
            assert stats["restarts_used"] == 1
            [replica_stats] = stats["replicas"].values()
            assert replica_stats["alive"] and replica_stats["restarts"] == 1
            assert replica_stats["pid"] != old_pid

    def test_restart_budget_is_bounded(self):
        model = tiny_fcnn()
        sample = np.random.default_rng(17).normal(size=IMAGE_SHAPE)
        with ShardedInferenceService(workers=1, max_batch=8,
                                     max_latency_s=0.001,
                                     max_worker_restarts=0) as service:
            service.deploy("fcnn", model, "SI", image_shape=IMAGE_SHAPE)
            self._kill_replica(service)
            # no budget: the slot stays dead and every request fails fast
            for _ in range(2):
                with pytest.raises(WorkerError, match="died mid-request"):
                    service.logits("fcnn", sample)
            stats = service.stats()["fcnn"]
            assert stats["restarts_used"] == 0
            [replica_stats] = stats["replicas"].values()
            assert not replica_stats["alive"] and replica_stats["restarts"] == 0

    def test_worker_batch_error_does_not_restart(self):
        """A live worker failing one batch keeps its process (no respawn)."""
        model = tiny_fcnn()
        images = np.random.default_rng(19).normal(size=(2, *IMAGE_SHAPE))
        with ShardedInferenceService(workers=1, max_batch=8,
                                     max_latency_s=0.001,
                                     max_worker_restarts=2) as service:
            service.deploy("fcnn", model, "SI", image_shape=IMAGE_SHAPE)
            lane = service.lane("fcnn")
            [replica] = lane.replicas
            pid = replica.process.pid
            # an oversized shape the worker-side predict will choke on
            # crosses admission (sample count is fine) but errors in-process
            bad = np.zeros((1, 2, *IMAGE_SHAPE[1:]))    # wrong channel count
            with pytest.raises(WorkerError, match="failed a batch"):
                service.logits("fcnn", bad)
            stats = service.stats()["fcnn"]
            assert stats["restarts_used"] == 0
            [replica_stats] = stats["replicas"].values()
            assert replica_stats["alive"] and replica_stats["pid"] == pid
            expected = repro.compile(model).predict_logits(images, get_scheme("SI"))
            assert np.abs(service.logits("fcnn", images) - expected).max() <= 1e-10
