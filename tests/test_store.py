"""Tests of the ahead-of-time compilation artifact store (:mod:`repro.store`).

Covers the content-addressed key (stability, weight/policy perturbation,
noise-target bypass), cold-save/warm-load parity through ``repro.compile``,
every corruption mode degrading to a quarantined miss + live recompile,
atomic publication under racing writers (in-process deterministic loser and
two real processes), read-only degradation, cache/service invalidation
extending to disk, and the warm spawned worker performing zero
decompositions.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.assignment import get_scheme
from repro.core.compile import CompileOptions, HardwareTarget
from repro.core.compile import compile as compile_model
from repro.models import ComplexFCNN
from repro.photonics.noise import PhaseNoiseModel
from repro.serve.cache import ProgramCache
from repro.serve.service import PhotonicInferenceService
from repro.store import ArtifactMismatchError, ArtifactStore
from repro.store.manifest import MANIFEST_NAME, PAYLOAD_NAME

IMAGE_SHAPE = (1, 4, 4)      # SI assignment halves 16 pixels -> 8 complex features


def tiny_fcnn(seed: int = 0) -> ComplexFCNN:
    return ComplexFCNN(8, (6,), 3, decoder="merge",
                       rng=np.random.default_rng(seed))


def sample_images(count: int = 5) -> np.ndarray:
    return np.random.default_rng(42).normal(size=(count, *IMAGE_SHAPE))


@pytest.fixture
def store(tmp_path) -> ArtifactStore:
    return ArtifactStore(tmp_path / "store")


@pytest.fixture
def warm_store(store) -> ArtifactStore:
    """A store already holding the ``tiny_fcnn()`` default-policy entry."""
    program = compile_model(tiny_fcnn(), store=store)
    assert program.store_key is not None and store.stats.saves == 1
    return store


class TestContentKey:
    def test_key_is_stable_across_equal_models(self, store):
        key = store.key_for(tiny_fcnn())
        assert key == store.key_for(tiny_fcnn())
        assert len(key) == 64 and set(key) <= set("0123456789abcdef")

    def test_key_tracks_weights_and_policy(self, store):
        base = store.key_for(tiny_fcnn())
        perturbed = tiny_fcnn()
        perturbed.parameters()[0].data += 1e-9
        keys = {
            base,
            store.key_for(perturbed),
            store.key_for(tiny_fcnn(seed=1)),
            store.key_for(tiny_fcnn(), target=HardwareTarget(method="reck")),
            store.key_for(tiny_fcnn(), options=CompileOptions(backend="column")),
            store.key_for(tiny_fcnn(),
                          options=CompileOptions(dense_dimension_limit=2)),
            store.key_for(tiny_fcnn(),
                          target=HardwareTarget(quantization_bits=6)),
        }
        assert len(keys) == 7      # every perturbation lands on its own key

    def test_noise_targets_bypass_the_store(self, store):
        noisy = HardwareTarget(noise=PhaseNoiseModel.seeded(0.01), trials=2)
        assert store.try_key_for(tiny_fcnn(), target=noisy) is None
        program = compile_model(tiny_fcnn(), target=noisy, store=store)
        assert program.store_key is None and not program.store_hit
        assert store.keys() == [] and store.stats.saves == 0


class TestRoundTrip:
    def test_cold_compile_populates_warm_compile_hits(self, store):
        scheme, images = get_scheme("SI"), sample_images()
        cold = compile_model(tiny_fcnn(), store=store)
        assert not cold.store_hit and store.has(cold.store_key)
        warm = compile_model(tiny_fcnn(), store=store)
        assert warm.store_hit and warm.store_key == cold.store_key
        assert store.stats.hits == 1 and store.stats.saves == 1
        deviation = np.abs(warm.predict_logits(images, scheme)
                           - cold.predict_logits(images, scheme)).max()
        assert deviation <= 1e-12

    def test_warm_dense_matrices_are_memory_mapped(self, warm_store):
        [key] = warm_store.keys()
        artifact = warm_store.load(key)
        assert artifact is not None and len(artifact.matrices) >= 1
        # tiny meshes run the dense path, so every stage should serve its
        # fused transfer matrix straight off the mapped file
        assert all(isinstance(matrix.effective_weight_t(), np.memmap)
                   for matrix in artifact.matrices)

    def test_quantized_target_round_trips_through_the_store(self, store):
        scheme, images = get_scheme("SI"), sample_images()
        target = HardwareTarget(quantization_bits=5)
        cold = compile_model(tiny_fcnn(), target=target, store=store)
        warm = compile_model(tiny_fcnn(), target=target, store=store)
        assert warm.store_hit
        # quantization is applied after the stored clean decomposition, so
        # the warm program must land on the identical quantized logits
        deviation = np.abs(warm.predict_logits(images, scheme)
                           - cold.predict_logits(images, scheme)).max()
        assert deviation <= 1e-12

    def test_deploy_fn_rejects_foreign_models(self, warm_store):
        [key] = warm_store.keys()
        artifact = warm_store.load(key)
        with pytest.raises(ArtifactMismatchError, match="deploys"):
            artifact.deploy_fn()([np.zeros((99, 99))])
        with pytest.raises(ArtifactMismatchError, match="more"):
            artifact.deploy_fn()([np.zeros((2, 2))]
                                 * (len(artifact.matrices) + 1))

    def test_mismatching_entry_quarantines_and_recompiles(self, warm_store):
        # same content key, different model: only reachable through damage or
        # tampering, so stage it by hand -- the compile seam must quarantine
        # the entry and still return a working live-compiled program
        scheme, images = get_scheme("SI"), sample_images()
        other = ComplexFCNN(8, (7, 6), 3, decoder="merge",
                            rng=np.random.default_rng(5))
        key = warm_store.key_for(other)
        [donor] = warm_store.keys()
        entry = warm_store.entry_path(key)
        entry.parent.mkdir(parents=True, exist_ok=True)
        os.rename(warm_store.entry_path(donor), entry)
        # patch the manifest's key so validation blames the *content*, not
        # the location -- exactly what a stale-but-well-formed entry looks like
        manifest = json.loads((entry / MANIFEST_NAME).read_text())
        manifest["key"] = key
        (entry / MANIFEST_NAME).write_text(json.dumps(manifest))
        program = compile_model(other, store=warm_store)
        assert not program.store_hit
        assert warm_store.has(key) and warm_store.stats.saves == 2
        reference = compile_model(ComplexFCNN(8, (7, 6), 3, decoder="merge",
                                              rng=np.random.default_rng(5)))
        deviation = np.abs(program.predict_logits(images, scheme)
                           - reference.predict_logits(images, scheme)).max()
        assert deviation <= 1e-12


def _truncate_payload(entry: Path) -> None:
    payload = entry / PAYLOAD_NAME
    payload.write_bytes(payload.read_bytes()[:payload.stat().st_size // 2])


def _bitflip_payload(entry: Path) -> None:
    payload = entry / PAYLOAD_NAME
    raw = bytearray(payload.read_bytes())
    raw[len(raw) // 2] ^= 0xFF
    payload.write_bytes(bytes(raw))


def _bitflip_dense(entry: Path) -> None:
    dense = sorted((entry / "dense").glob("*.npy"))
    assert dense, "tiny meshes must publish dense payloads"
    raw = bytearray(dense[0].read_bytes())
    raw[-1] ^= 0xFF
    dense[0].write_bytes(bytes(raw))


def _wrong_schema(entry: Path) -> None:
    manifest = json.loads((entry / MANIFEST_NAME).read_text())
    manifest["schema_version"] = 999
    (entry / MANIFEST_NAME).write_text(json.dumps(manifest))


def _garble_manifest(entry: Path) -> None:
    (entry / MANIFEST_NAME).write_text("{this is not json")


class TestCorruption:
    @pytest.mark.parametrize("damage", [
        _truncate_payload, _bitflip_payload, _bitflip_dense,
        _wrong_schema, _garble_manifest,
    ], ids=["truncated-payload", "bitflipped-payload", "bitflipped-dense",
            "wrong-schema", "garbled-manifest"])
    def test_damage_degrades_to_live_compile(self, warm_store, damage):
        scheme, images = get_scheme("SI"), sample_images()
        [key] = warm_store.keys()
        damage(warm_store.entry_path(key))
        assert warm_store.load(key) is None         # logged miss, never a crash
        assert warm_store.stats.corrupt == 1
        assert not warm_store.has(key)              # quarantined out of the tree
        program = compile_model(tiny_fcnn(), store=warm_store)
        assert not program.store_hit
        assert warm_store.has(key)                  # recompile repopulated it
        reference = compile_model(tiny_fcnn())
        deviation = np.abs(program.predict_logits(images, scheme)
                           - reference.predict_logits(images, scheme)).max()
        assert deviation <= 1e-12
        # ... and the repopulated entry is warm again
        assert compile_model(tiny_fcnn(), store=warm_store).store_hit


class TestAtomicPublication:
    def test_losing_the_rename_race_is_success(self, tmp_path):
        # publish the same key twice: the second save assembles its tmp
        # directory, loses os.replace to the existing entry (ENOTEMPTY) and
        # must treat that as the other writer having won
        store = ArtifactStore(tmp_path / "store")
        model = tiny_fcnn()
        target, options = HardwareTarget(), CompileOptions()
        key = store.key_for(model, target, options)
        assert store.save(key, [], model, target, options) is True
        assert store.save(key, [], model, target, options) is True
        assert store.stats.saves == 2 and store.stats.errors == 0
        assert store.keys() == [key]
        assert not list((tmp_path / "store").rglob("*.tmp"))

    def test_two_processes_precompile_the_same_key(self, tmp_path):
        root = tmp_path / "store"
        script = (
            "import sys\n"
            "import numpy as np\n"
            "from repro.core.compile import compile as compile_model\n"
            "from repro.models import ComplexFCNN\n"
            "from repro.store import ArtifactStore\n"
            "store = ArtifactStore(sys.argv[1])\n"
            "model = ComplexFCNN(8, (6,), 3, decoder='merge',\n"
            "                    rng=np.random.default_rng(0))\n"
            "program = compile_model(model, store=store)\n"
            "print(program.store_key, store.stats.errors)\n"
        )
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[1] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        racers = [subprocess.Popen([sys.executable, "-c", script, str(root)],
                                   env=env, stdout=subprocess.PIPE,
                                   stderr=subprocess.PIPE, text=True)
                  for _ in range(2)]
        outputs = []
        for racer in racers:
            stdout, stderr = racer.communicate(timeout=300)
            assert racer.returncode == 0, stderr
            outputs.append(stdout.split())
        (key_a, errors_a), (key_b, errors_b) = outputs
        assert key_a == key_b and errors_a == errors_b == "0"
        store = ArtifactStore(root)
        assert store.keys() == [key_a]
        assert not list(root.rglob("*.tmp"))        # no torn/leftover writers
        assert compile_model(tiny_fcnn(), store=store).store_hit


class TestReadOnlyDegradation:
    def test_readonly_flag_never_writes(self, tmp_path):
        store = ArtifactStore(tmp_path / "store", readonly=True)
        program = compile_model(tiny_fcnn(), store=store)
        assert program.store_key is not None and not program.store_hit
        assert store.keys() == [] and store.stats.saves == 0
        images, scheme = sample_images(), get_scheme("SI")
        reference = compile_model(tiny_fcnn())
        assert np.abs(program.predict_logits(images, scheme)
                      - reference.predict_logits(images, scheme)).max() <= 1e-12

    def test_unwritable_media_degrades_to_live_compile(self, store, monkeypatch):
        import repro.store.artifact as artifact_module

        def refuse(*_args, **_kwargs):
            raise PermissionError("read-only file system")

        monkeypatch.setattr(artifact_module.os, "replace", refuse)
        program = compile_model(tiny_fcnn(), store=store)
        assert program.store_key is not None and not program.store_hit
        assert store.stats.errors == 1 and store.keys() == []
        assert not list(store.root.rglob("*.tmp"))  # failed write left no tmp
        assert program.predict_logits(sample_images(), get_scheme("SI")).shape == (5, 3)

    @pytest.mark.skipif(os.geteuid() == 0,
                        reason="root ignores directory write bits")
    def test_unwritable_directory_degrades_to_live_compile(self, tmp_path):
        root = tmp_path / "store"
        root.mkdir()
        root.chmod(0o555)
        try:
            store = ArtifactStore(root)
            program = compile_model(tiny_fcnn(), store=store)
            assert not program.store_hit and store.stats.errors == 1
        finally:
            root.chmod(0o755)


class TestServingIntegration:
    def test_cache_invalidate_extends_to_disk(self, tmp_path):
        root = tmp_path / "store"
        cache = ProgramCache(capacity=4, store=ArtifactStore(root))
        program = cache.get_or_compile("fcnn", tiny_fcnn())
        key = program.store_key
        assert not program.store_hit and cache.store.has(key)
        # a second cache over the same root stands in for a fresh process
        warm_cache = ProgramCache(capacity=4, store=ArtifactStore(root))
        assert warm_cache.get_or_compile("fcnn", tiny_fcnn()).store_hit
        # invalidate deletes the disk entry; the next compile of the key
        # bypasses the store read and rewrites the entry live
        assert cache.invalidate("fcnn") is True
        assert not cache.store.has(key) and cache.store.stats.deletes == 1
        fresh = cache.get_or_compile("fcnn", tiny_fcnn())
        assert not fresh.store_hit and cache.store.has(key)
        assert cache.store.stats.saves == 2

    def test_service_refresh_deploy_rewrites_entry(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        scheme = get_scheme("SI")
        with PhotonicInferenceService(max_latency_s=0.001, store=store) as service:
            first = service.deploy("fcnn", tiny_fcnn(), scheme)
            assert store.has(first.store_key) and store.stats.saves == 1
            refreshed = service.deploy("fcnn", tiny_fcnn(), scheme, refresh=True)
            assert not refreshed.store_hit          # bypassed the warm entry
            assert store.stats.deletes == 1 and store.stats.saves == 2
            assert store.has(refreshed.store_key)
            images = sample_images()
            assert np.abs(service.logits("fcnn", images)
                          - refreshed.predict_logits(images, scheme)).max() <= 1e-12

    def test_warm_worker_spawns_with_zero_decompositions(self, tmp_path):
        from repro.serve.shard import ShardedInferenceService

        root = tmp_path / "store"
        model = tiny_fcnn()
        program = compile_model(model, store=ArtifactStore(root))
        assert program.store_key is not None
        with ShardedInferenceService(workers=1, max_batch=8,
                                     max_latency_s=0.002,
                                     store_path=str(root)) as service:
            info = service.deploy("fcnn", model, "SI", image_shape=IMAGE_SHAPE)
            # the whole replica program came off the warm store: the spawned
            # process never ran a single SVD decomposition
            assert info["decompositions"] == [0]
            replicas = service.stats()["fcnn"]["replicas"]
            assert all(stats["store"]["hits"] == 1 and stats["store"]["misses"] == 0
                       for stats in replicas.values())
            images = sample_images()
            expected = program.predict_logits(images, get_scheme("SI"))
            assert np.abs(service.logits("fcnn", images) - expected).max() <= 1e-12


class TestPruning:
    def _populate(self, store, count=3):
        """Distinct entries with strictly increasing (stale) LRU stamps."""
        keys = []
        for seed in range(count):
            program = compile_model(tiny_fcnn(seed=seed), store=store)
            keys.append(program.store_key)
        for rank, key in enumerate(keys):
            stamp = 1_000_000.0 + rank        # far in the past, ordered
            os.utime(store.entry_path(key), (stamp, stamp))
        return keys

    def test_lru_prune_keeps_most_recently_used(self, store):
        oldest, middle, newest = self._populate(store)
        assert store.load(oldest) is not None    # a hit refreshes the clock
        report = store.prune(max_entries=2)
        assert report == {"removed_entries": 1, "removed_quarantined": 0,
                          "kept_entries": 2}
        # `middle` was the least recently *used* entry, not `oldest`
        assert store.has(oldest) and store.has(newest) and not store.has(middle)
        assert store.stats.deletes == 1

    def test_age_prune_drops_stale_entries_and_quarantine(self, store):
        keys = self._populate(store)
        store.quarantine(keys[0])                # stale tree under .quarantine
        [quarantined] = (store.root / ".quarantine").iterdir()
        os.utime(quarantined, (1_000_000.0, 1_000_000.0))
        report = store.prune(max_age=3600.0)
        assert report == {"removed_entries": 2, "removed_quarantined": 1,
                          "kept_entries": 0}
        assert store.keys() == []
        assert not any((store.root / ".quarantine").iterdir())
        # fresh entries survive the same bound
        fresh = compile_model(tiny_fcnn(seed=7), store=store)
        assert store.prune(max_age=3600.0)["kept_entries"] == 1
        assert store.has(fresh.store_key)

    def test_prune_never_tears_a_concurrent_reader(self, store, monkeypatch):
        """A reader mid-load when its entry is pruned gets a clean miss.

        The interleaving is forced deterministically: the reader opens the
        manifest, then -- before it hashes the payload -- another store
        handle prunes everything.  The reader must degrade to the standard
        quarantined miss (``None`` + ``corrupt`` counted), never raise or
        serve a torn entry.
        """
        from repro.store import artifact as artifact_module

        [key] = [compile_model(tiny_fcnn(), store=store).store_key]
        real_sha256 = artifact_module.file_sha256
        pruned = {}

        def racing_sha256(path):
            if not pruned:
                pruned["report"] = ArtifactStore(store.root).prune(max_entries=0)
            return real_sha256(path)

        monkeypatch.setattr(artifact_module, "file_sha256", racing_sha256)
        assert store.load(key) is None
        assert pruned["report"]["removed_entries"] == 1
        assert store.stats.corrupt == 1 and store.stats.hits == 0
        # no half-deleted debris left in the addressable tree
        assert store.keys() == [] and not store.has(key)

    def test_readonly_store_never_prunes(self, warm_store):
        readonly = ArtifactStore(warm_store.root, readonly=True)
        report = readonly.prune(max_entries=0, max_age=0.0)
        assert report == {"removed_entries": 0, "removed_quarantined": 0,
                          "kept_entries": 1}
        assert len(warm_store.keys()) == 1

    def test_prune_cli_reports_removals(self, store, capsys):
        from repro.cli import main

        self._populate(store, count=2)
        assert main(["store", "prune", str(store.root), "--max-entries", "1"]) == 0
        out = capsys.readouterr().out
        assert "removed 1 entry" in out and "1 kept" in out
        assert len(ArtifactStore(store.root).keys()) == 1
