"""Tests of the training hot-path kernels.

Three invariants pin the fast path to its executable references:

* the fused complex kernels (`complex_linear` / `complex_conv2d`, both
  product strategies) match the 4-real-op Eq. (2) formulation -- values and
  *gradients* -- to 1e-8 across stride/padding/bias combinations;
* the sliding-window `im2col` and the bincount/reshape `col2im` agree with
  the seed index-table/`np.add.at` implementations exactly;
* the in-place optimizer steps produce bit-identical trajectories to the
  allocating `step_reference` implementations.
"""

import numpy as np
import pytest

from repro.nn.complex import (
    ComplexConv2d,
    ComplexLinear,
    ComplexTensor,
    complex_conv2d,
    complex_linear,
)
from repro.nn.module import Parameter
from repro.optim import SGD, Adam, AdamW
from repro.tensor import Tensor, functional as F, gradcheck
from repro.tensor.functional import (
    col2im,
    col2im_reference,
    im2col,
    im2col_reference,
    use_reference_kernels,
)

CONV_CASES = [
    # (stride, padding, bias)
    (1, 0, True),
    (1, 1, False),
    (2, 1, True),
    (2, 0, False),
    (1, 2, True),
]


def _grads(layer, xr, xi, forward):
    layer.zero_grad()
    real = Tensor(xr, requires_grad=True)
    imag = Tensor(xi, requires_grad=True)
    forward(ComplexTensor(real, imag)).power().sum().backward()
    grads = {name: parameter.grad.copy() for name, parameter in layer.named_parameters()}
    grads["input_real"] = real.grad.copy()
    grads["input_imag"] = imag.grad.copy()
    return grads


class TestFusedComplexConv2d:
    @pytest.mark.parametrize("product", ["block", "karatsuba"])
    @pytest.mark.parametrize("stride,padding,bias", CONV_CASES)
    def test_gradient_parity_with_reference(self, rng, product, stride, padding, bias):
        layer = ComplexConv2d(2, 3, 3, stride=stride, padding=padding, bias=bias,
                              rng=np.random.default_rng(7))
        xr = rng.normal(size=(2, 2, 6, 7))
        xi = rng.normal(size=(2, 2, 6, 7))

        fused = lambda x: complex_conv2d(  # noqa: E731
            x, layer.weight_real, layer.weight_imag, layer.bias_real, layer.bias_imag,
            stride=stride, padding=padding, product=product)
        out = fused(ComplexTensor(Tensor(xr), Tensor(xi)))
        reference = layer.forward_reference(ComplexTensor(Tensor(xr), Tensor(xi)))
        assert np.allclose(out.to_complex_array(), reference.to_complex_array(), atol=1e-10)

        fused_grads = _grads(layer, xr, xi, fused)
        reference_grads = _grads(layer, xr, xi, layer.forward_reference)
        assert set(fused_grads) == set(reference_grads)
        for name, value in reference_grads.items():
            assert np.allclose(fused_grads[name], value, atol=1e-8), name

    def test_finite_difference_gradients(self, rng):
        layer = ComplexConv2d(1, 2, 3, stride=2, padding=1, rng=np.random.default_rng(3))
        real = Tensor(rng.normal(size=(1, 1, 5, 5)), requires_grad=True)
        imag = Tensor(rng.normal(size=(1, 1, 5, 5)), requires_grad=True)
        gradcheck(lambda: layer(ComplexTensor(real, imag)).power().sum(),
                  [real, imag, layer.weight_real, layer.weight_imag,
                   layer.bias_real, layer.bias_imag], atol=1e-4)

    def test_layer_routes_through_fused_kernel(self, rng):
        layer = ComplexConv2d(2, 3, 3, rng=np.random.default_rng(5))
        xr, xi = rng.normal(size=(2, 2, 6, 6)), rng.normal(size=(2, 2, 6, 6))
        fast = layer(ComplexTensor(Tensor(xr), Tensor(xi)))
        with use_reference_kernels():
            slow = layer(ComplexTensor(Tensor(xr), Tensor(xi)))
        assert np.allclose(fast.to_complex_array(), slow.to_complex_array(), atol=1e-10)

    def test_channel_mismatch_raises(self, rng):
        layer = ComplexConv2d(3, 2, 3, rng=np.random.default_rng(1))
        x = ComplexTensor(Tensor(rng.normal(size=(1, 2, 5, 5))))
        with pytest.raises(ValueError):
            layer(x)

    def test_unknown_product_rejected(self, rng):
        layer = ComplexConv2d(1, 1, 3, rng=np.random.default_rng(1))
        x = ComplexTensor(Tensor(rng.normal(size=(1, 1, 5, 5))))
        with pytest.raises(ValueError):
            complex_conv2d(x, layer.weight_real, layer.weight_imag, product="strassen")


class TestFusedComplexLinear:
    @pytest.mark.parametrize("bias", [True, False])
    def test_gradient_parity_with_reference(self, rng, bias):
        layer = ComplexLinear(6, 4, bias=bias, rng=np.random.default_rng(11))
        xr = rng.normal(size=(5, 6))
        xi = rng.normal(size=(5, 6))

        fused = lambda x: complex_linear(  # noqa: E731
            x, layer.weight_real, layer.weight_imag, layer.bias_real, layer.bias_imag)
        out = fused(ComplexTensor(Tensor(xr), Tensor(xi)))
        reference = layer.forward_reference(ComplexTensor(Tensor(xr), Tensor(xi)))
        assert np.allclose(out.to_complex_array(), reference.to_complex_array(), atol=1e-10)

        fused_grads = _grads(layer, xr, xi, fused)
        reference_grads = _grads(layer, xr, xi, layer.forward_reference)
        for name, value in reference_grads.items():
            assert np.allclose(fused_grads[name], value, atol=1e-8), name

    def test_finite_difference_gradients(self, rng):
        layer = ComplexLinear(3, 2, rng=np.random.default_rng(13))
        real = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        imag = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        gradcheck(lambda: layer(ComplexTensor(real, imag)).power().sum(),
                  [real, imag, layer.weight_real, layer.weight_imag,
                   layer.bias_real, layer.bias_imag], atol=1e-4)

    def test_only_real_output_used_still_correct(self, rng):
        """Gradients stay exact when only one packed output part is consumed."""
        layer = ComplexLinear(4, 3, bias=False, rng=np.random.default_rng(17))
        xr = rng.normal(size=(5, 4))
        xi = rng.normal(size=(5, 4))

        layer.zero_grad()
        out = layer(ComplexTensor(Tensor(xr), Tensor(xi)))
        (out.real ** 2).sum().backward()
        fused = {name: p.grad.copy() for name, p in layer.named_parameters()}
        layer.zero_grad()
        reference = layer.forward_reference(ComplexTensor(Tensor(xr), Tensor(xi)))
        (reference.real ** 2).sum().backward()
        for name, parameter in layer.named_parameters():
            assert np.allclose(fused[name], parameter.grad, atol=1e-8), name


class TestIm2ColFastPath:
    GEOMETRIES = [
        # kernel, stride, padding: covers the bincount, shifted-accumulation
        # and exact-tiling (reshape) adjoint paths
        ((3, 3), (1, 1), (0, 0)),
        ((3, 3), (2, 2), (1, 1)),
        ((2, 4), (1, 2), (2, 0)),
        ((2, 2), (2, 2), (0, 0)),   # exact tiling -> pure reshape adjoint
        ((3, 3), (3, 3), (0, 0)),   # exact tiling
    ]

    @pytest.mark.parametrize("kernel,stride,padding", GEOMETRIES)
    def test_matches_reference_exactly(self, rng, kernel, stride, padding):
        x = rng.normal(size=(3, 2, 6, 8))
        fast, size_fast = im2col(x, kernel, stride, padding)
        seed, size_seed = im2col_reference(x, kernel, stride, padding)
        assert size_fast == size_seed
        assert np.array_equal(fast, seed)

        y = rng.normal(size=fast.shape)
        assert np.allclose(col2im(y, x.shape, kernel, stride, padding),
                           col2im_reference(y, x.shape, kernel, stride, padding),
                           atol=1e-12)

    def test_large_block_shifted_path(self, rng):
        """Force the shifted-accumulation branch with a big spatial plane."""
        x = rng.normal(size=(16, 2, 32, 32))
        cols, _ = im2col(x, (5, 5), (1, 1), (0, 0))
        y = rng.normal(size=cols.shape)
        assert np.allclose(col2im(y, x.shape, (5, 5), (1, 1), (0, 0)),
                           col2im_reference(y, x.shape, (5, 5), (1, 1), (0, 0)),
                           atol=1e-12)

    def test_complex_columns_scatter(self, rng):
        shape = (2, 2, 5, 5)
        cols, _ = im2col(np.zeros(shape), (3, 3), (1, 1), (0, 0))
        y = rng.normal(size=cols.shape) + 1j * rng.normal(size=cols.shape)
        assert np.allclose(col2im(y, shape, (3, 3), (1, 1), (0, 0)),
                           col2im_reference(y, shape, (3, 3), (1, 1), (0, 0)),
                           atol=1e-12)

    def test_adjoint_identity(self, rng):
        """<im2col(x), y> == <x, col2im(y)> on every dispatch path."""
        for kernel, stride, padding in self.GEOMETRIES:
            shape = (2, 3, 6, 8)
            x = rng.normal(size=shape)
            cols, _ = im2col(x, kernel, stride, padding)
            y = rng.normal(size=cols.shape)
            lhs = float((cols * y).sum())
            rhs = float((x * col2im(y, shape, kernel, stride, padding)).sum())
            assert np.isclose(lhs, rhs)

    def test_reference_mode_round_trips_backward(self, rng):
        """A pass recorded under reference kernels backpropagates through them."""
        x = Tensor(rng.normal(size=(2, 2, 6, 6)), requires_grad=True)
        w = Tensor(rng.normal(size=(3, 2, 3, 3)) * 0.2, requires_grad=True)
        with use_reference_kernels():
            out = F.conv2d(x, w, None, stride=1, padding=1)
        (out ** 2).sum().backward()
        reference_grad = x.grad.copy()
        x.zero_grad(); w.zero_grad()
        (F.conv2d(x, w, None, stride=1, padding=1) ** 2).sum().backward()
        assert np.allclose(reference_grad, x.grad, atol=1e-10)


def _paired_parameters(rng, count=3):
    """Two identical parameter sets plus a deterministic gradient schedule."""
    shapes = [(4, 3), (7,), (2, 3, 3, 3)][:count]
    data = [rng.normal(size=shape) for shape in shapes]
    fast = [Parameter(array.copy()) for array in data]
    slow = [Parameter(array.copy()) for array in data]
    return fast, slow


def _run_trajectory(optimizer, parameters, reference: bool, steps, rng):
    for _ in range(steps):
        for parameter in parameters:
            # deterministic pseudo-gradient tied to the parameter value so the
            # two trajectories only stay together if the updates are identical
            parameter.grad = np.sin(parameter.data) + 0.1 * parameter.data
        if reference:
            optimizer.step_reference()
        else:
            optimizer.step()


class TestInPlaceOptimizerEquivalence:
    @pytest.mark.parametrize("kwargs", [
        dict(lr=0.1),
        dict(lr=0.05, momentum=0.9),
        dict(lr=0.05, momentum=0.9, nesterov=True),
        dict(lr=0.1, weight_decay=0.01),
        dict(lr=0.05, momentum=0.9, weight_decay=0.01, nesterov=True),
    ])
    def test_sgd_bit_identical_to_reference(self, rng, kwargs):
        fast, slow = _paired_parameters(rng)
        _run_trajectory(SGD(fast, **kwargs), fast, False, 10, rng)
        _run_trajectory(SGD(slow, **kwargs), slow, True, 10, rng)
        for a, b in zip(fast, slow):
            assert np.array_equal(a.data, b.data)

    @pytest.mark.parametrize("cls,kwargs", [
        (Adam, dict(lr=0.01)),
        (Adam, dict(lr=0.01, weight_decay=0.02)),
        (AdamW, dict(lr=0.01, weight_decay=0.02)),
    ])
    def test_adam_bit_identical_to_reference(self, rng, cls, kwargs):
        fast, slow = _paired_parameters(rng)
        _run_trajectory(cls(fast, **kwargs), fast, False, 10, rng)
        _run_trajectory(cls(slow, **kwargs), slow, True, 10, rng)
        for a, b in zip(fast, slow):
            assert np.array_equal(a.data, b.data)

    def test_step_updates_in_place(self, rng):
        """The parameter's array object is mutated, never rebound."""
        parameter = Parameter(rng.normal(size=(5,)))
        buffer_before = parameter.data
        optimizer = SGD([parameter], lr=0.1, momentum=0.9)
        parameter.grad = np.ones(5)
        optimizer.step()
        assert parameter.data is buffer_before

    def test_moments_update_in_place(self, rng):
        parameter = Parameter(rng.normal(size=(4,)))
        optimizer = Adam([parameter], lr=0.01)
        moment1_before = optimizer._moment1[0]
        parameter.grad = np.ones(4)
        optimizer.step()
        assert optimizer._moment1[0] is moment1_before
        assert np.any(moment1_before != 0.0)
