"""Tests of the hardware-degradation scenario suite (repro.scenarios)."""

import numpy as np
import pytest

import repro
from repro.assignment import get_scheme
from repro.models import ComplexFCNN
from repro.photonics.mzi_mesh import decompose_unitary, random_unitary
from repro.scenarios import (
    CompositeScenario,
    CorrelatedCrosstalkScenario,
    FabricationOffsetScenario,
    HardwareScenario,
    ThermalDriftScenario,
    build_scenario,
    device_of,
    list_scenarios,
    scenario_class,
    scenario_descriptions,
)

IMAGE_SHAPE = (1, 4, 4)


def small_mesh(seed=1, dim=6):
    return decompose_unitary(random_unitary(dim, rng=np.random.default_rng(seed)),
                             method="clements")


def tiny_fcnn(seed: int = 0) -> ComplexFCNN:
    return ComplexFCNN(8, (6,), 3, decoder="merge",
                       rng=np.random.default_rng(seed))


def offsets_of(mesh, degraded):
    return np.concatenate([
        degraded.thetas - mesh.thetas,
        degraded.phis - mesh.phis,
        np.angle(degraded.output_phases / mesh.output_phases),
    ], axis=-1)


class TestRegistry:
    def test_paper_scenarios_registered(self):
        assert {"thermal_drift", "crosstalk", "fabrication"} <= set(list_scenarios())

    def test_descriptions_cover_every_name(self):
        descriptions = scenario_descriptions()
        assert set(descriptions) == set(list_scenarios())
        assert all(descriptions.values())

    def test_build_from_config_dict(self):
        scenario = build_scenario({"name": "thermal_drift",
                                   "params": {"sigma": 0.1, "tau_s": 10.0}})
        assert isinstance(scenario, ThermalDriftScenario)
        assert scenario.tau_s == 10.0

    def test_build_list_makes_composite(self):
        composite = build_scenario([{"name": "fabrication"},
                                    {"name": "crosstalk"}])
        assert isinstance(composite, CompositeScenario)
        assert [member.name for member in composite.scenarios] == \
            ["fabrication", "crosstalk"]

    def test_instance_passes_through(self):
        scenario = FabricationOffsetScenario()
        assert build_scenario(scenario) is scenario

    def test_unknown_name_lists_choices(self):
        with pytest.raises(KeyError, match="thermal_drift"):
            build_scenario({"name": "cosmic_rays"})

    def test_bad_config_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario config keys"):
            build_scenario({"name": "fabrication", "sigma": 0.1})
        with pytest.raises(ValueError, match="'name'"):
            build_scenario({"params": {}})
        with pytest.raises(TypeError):
            build_scenario(42)

    def test_config_round_trip(self):
        scenario = ThermalDriftScenario(sigma=0.2, tau_s=12.0, seed=9)
        rebuilt = build_scenario(scenario.as_config())
        assert rebuilt.params() == scenario.params()

    def test_reregistering_a_name_is_an_error(self):
        from repro.scenarios.registry import register_scenario

        with pytest.raises(ValueError, match="already registered"):
            register_scenario("fabrication")(ThermalDriftScenario)


class TestDeviceIdentity:
    def test_same_content_same_key(self):
        assert device_of(small_mesh(seed=3)).key == device_of(small_mesh(seed=3)).key

    def test_different_content_different_key(self):
        assert device_of(small_mesh(seed=3)).key != device_of(small_mesh(seed=4)).key

    def test_topology_fields(self):
        mesh = small_mesh()
        device = device_of(mesh)
        assert device.mzi_count == mesh.mzi_count
        assert device.shifter_count == 2 * mesh.mzi_count + mesh.dimension
        assert device.columns.shape == (mesh.mzi_count,)
        assert device.columns.max() == device.depth - 1


class TestThermalDrift:
    def test_clock_zero_is_clean(self):
        mesh = small_mesh()
        degraded = ThermalDriftScenario(sigma=0.3).perturb(mesh)
        assert np.abs(offsets_of(mesh, degraded)).max() <= 1e-12

    def test_variance_grows_to_stationary(self):
        mesh = small_mesh()
        scenario = ThermalDriftScenario(sigma=0.1, tau_s=30.0, seed=0)
        offsets = offsets_of(mesh, scenario.at_times(
            mesh, [5.0, 200.0], trials=4000))
        early, late = offsets[0].std(), offsets[1].std()
        assert abs(early - scenario.expected_std(5.0)) < 0.005
        assert abs(late - 0.1) < 0.005

    def test_idempotent_at_fixed_clock(self):
        mesh = small_mesh()
        scenario = ThermalDriftScenario(sigma=0.2, seed=1)
        scenario.advance(42.0)
        first = scenario.perturb(mesh)
        second = scenario.perturb(mesh)
        assert np.array_equal(first.thetas, second.thetas)
        assert np.array_equal(first.output_phases, second.output_phases)

    def test_same_grid_replays_identically(self):
        mesh = small_mesh()
        walks = []
        for _ in range(2):
            scenario = ThermalDriftScenario(sigma=0.2, tau_s=20.0, seed=5)
            steps = []
            for dt in (3.0, 7.0, 10.0):
                scenario.advance(dt)
                steps.append(offsets_of(mesh, scenario.perturb(mesh)))
            walks.append(np.stack(steps))
        assert np.array_equal(walks[0], walks[1])

    def test_times_must_move_forward(self):
        scenario = ThermalDriftScenario()
        with pytest.raises(ValueError, match="non-decreasing"):
            scenario.at_times(small_mesh(), [5.0, 1.0])
        scenario.at_times(small_mesh(), [5.0])
        with pytest.raises(ValueError, match="forward"):
            scenario.at_times(small_mesh(), [1.0])

    def test_reset_recalibrates(self):
        mesh = small_mesh()
        scenario = ThermalDriftScenario(sigma=0.3, seed=2)
        scenario.advance(60.0)
        assert np.abs(offsets_of(mesh, scenario.perturb(mesh))).max() > 0
        scenario.reset()
        assert scenario.clock == 0.0
        assert np.abs(offsets_of(mesh, scenario.perturb(mesh))).max() <= 1e-12

    def test_sigma_array_adds_axis_with_common_randomness(self):
        mesh = small_mesh()
        scenario = ThermalDriftScenario(sigma=[0.0, 0.1, 0.2], seed=0)
        scenario.advance(100.0)
        degraded = scenario.perturb(mesh, trials=4)
        assert degraded.trial_shape == (3, 4)
        offsets = offsets_of(mesh, degraded)
        assert np.abs(offsets[0]).max() <= 1e-12        # sigma=0 row is clean
        # common random numbers: sigma rows are scalar multiples
        assert np.allclose(offsets[2], 2.0 * offsets[1])

    def test_validation(self):
        with pytest.raises(ValueError, match="non-negative"):
            ThermalDriftScenario(sigma=-0.1)
        with pytest.raises(ValueError, match="positive"):
            ThermalDriftScenario(tau_s=0.0)
        with pytest.raises(ValueError, match="dt >= 0"):
            ThermalDriftScenario().advance(-1.0)


class TestCrosstalk:
    def test_marginals_are_exactly_sigma(self):
        covariance = CorrelatedCrosstalkScenario(
            sigma=0.05, coupling=0.7).covariance(small_mesh())
        assert np.abs(np.diag(covariance) - 0.05 ** 2).max() < 1e-12

    def test_sampled_covariance_matches_closed_form(self):
        mesh = small_mesh()
        scenario = CorrelatedCrosstalkScenario(sigma=0.05, coupling=0.4, seed=0)
        covariance = scenario.covariance(mesh)
        samples = offsets_of(mesh, scenario.perturb(mesh, trials=60_000))
        empirical = samples.T @ samples / samples.shape[0]
        assert np.abs(empirical - covariance).max() < 8.0 * 0.05 ** 2 / np.sqrt(60_000)

    def test_zero_coupling_is_iid(self):
        covariance = CorrelatedCrosstalkScenario(
            sigma=0.05, coupling=0.0).covariance(small_mesh())
        assert np.abs(covariance - np.diag(np.diag(covariance))).max() == 0.0

    def test_every_shifter_is_coupled(self):
        mesh = small_mesh()
        scenario = CorrelatedCrosstalkScenario()
        assert scenario.degrees(device_of(mesh)).min() >= 1

    def test_draws_are_fresh_per_evaluation(self):
        mesh = small_mesh()
        scenario = CorrelatedCrosstalkScenario(sigma=0.05, coupling=0.3)
        first = offsets_of(mesh, scenario.perturb(mesh))
        second = offsets_of(mesh, scenario.perturb(mesh))
        assert not np.array_equal(first, second)


class TestFabrication:
    def test_frozen_per_device(self):
        mesh = small_mesh()
        first = offsets_of(mesh, FabricationOffsetScenario(seed=4).perturb(mesh))
        second = offsets_of(mesh, FabricationOffsetScenario(seed=4).perturb(mesh))
        assert np.array_equal(first, second)
        assert np.abs(first).max() > 0

    def test_clock_independent(self):
        mesh = small_mesh()
        scenario = FabricationOffsetScenario(seed=4)
        before = offsets_of(mesh, scenario.perturb(mesh))
        scenario.advance(1e6)
        assert np.array_equal(before, offsets_of(mesh, scenario.perturb(mesh)))

    def test_distinct_devices_differ(self):
        scenario = FabricationOffsetScenario(seed=4)
        a, b = small_mesh(seed=1), small_mesh(seed=2)
        assert not np.array_equal(offsets_of(a, scenario.perturb(a)),
                                  offsets_of(b, scenario.perturb(b)))


class TestComposite:
    def test_offsets_add(self):
        mesh = small_mesh()
        composite = CompositeScenario([FabricationOffsetScenario(sigma=0.02, seed=1),
                                       ThermalDriftScenario(sigma=0.05, seed=1)])
        composite.advance(20.0)
        combined = offsets_of(mesh, composite.perturb(mesh))
        fabrication = FabricationOffsetScenario(sigma=0.02, seed=1)
        drift = ThermalDriftScenario(sigma=0.05, seed=1)
        drift.advance(20.0)
        total = offsets_of(mesh, fabrication.perturb(mesh)) + \
            offsets_of(mesh, drift.perturb(mesh))
        assert np.allclose(combined, total, atol=1e-12)

    def test_requires_members(self):
        with pytest.raises(ValueError, match="at least one"):
            CompositeScenario([])


class TestNoiseSeamCompatibility:
    """Scenarios ride the exact PhaseNoiseModel seam unchanged."""

    def test_perturb_contract_matches_noise_model(self):
        mesh = small_mesh()
        scenario = CorrelatedCrosstalkScenario(sigma=0.05)
        batched = scenario.perturb(mesh, trials=7)
        assert batched.trial_shape == (7,)
        with pytest.raises(ValueError, match="trials must be positive"):
            scenario.perturb(mesh, trials=0)
        with pytest.raises(ValueError, match="already carries a trials axis"):
            scenario.perturb(batched, trials=2)

    def test_with_noise_accepts_a_scenario(self):
        images = np.random.default_rng(0).normal(size=(3, *IMAGE_SHAPE))
        program = repro.compile(tiny_fcnn())
        scenario = FabricationOffsetScenario(sigma=0.2, seed=3)
        degraded = program.with_noise(noise=scenario)
        clean = program.predict_logits(images, get_scheme("SI"))
        got = degraded.predict_logits(images, get_scheme("SI"))
        assert got.shape == clean.shape
        assert np.abs(got - clean).max() > 0

    def test_with_scenario_time_axis(self):
        images = np.random.default_rng(0).normal(size=(3, *IMAGE_SHAPE))
        program = repro.compile(tiny_fcnn())
        clean = program.predict_logits(images, get_scheme("SI"))
        scenario = ThermalDriftScenario(sigma=0.4, tau_s=30.0, seed=0)
        trajectory = program.with_scenario(scenario, times=[0.0, 90.0], trials=3)
        logits = trajectory.predict_logits(images, get_scheme("SI"))
        assert logits.shape == (2, 3, *clean.shape)
        # the t=0 slice of every trial is the clean program
        assert np.abs(logits[0] - clean).max() <= 1e-10
        assert np.abs(logits[1] - clean).max() > 0

    def test_with_scenario_accepts_config(self):
        program = repro.compile(tiny_fcnn())
        degraded = program.with_scenario({"name": "fabrication",
                                          "params": {"sigma": 0.1}})
        images = np.random.default_rng(1).normal(size=(2, *IMAGE_SHAPE))
        assert degraded.predict_logits(images, get_scheme("SI")).shape == (2, 3)


class TestTimeSweepHarness:
    def test_degradation_curve_monotone_from_clean(self):
        from repro.experiments.scenarios import scenario_time_sweep

        images = np.random.default_rng(2).normal(size=(24, *IMAGE_SHAPE))
        rows = scenario_time_sweep(
            tiny_fcnn(), "SI", images,
            {"name": "thermal_drift", "params": {"sigma": 0.5, "tau_s": 30.0}},
            times=[0.0, 120.0], trials=4)
        assert rows[0]["agreement"] == 1.0
        assert rows[1]["agreement"] < 1.0


class TestSubclassContract:
    def test_offsets_for_is_abstract(self):
        with pytest.raises(NotImplementedError):
            HardwareScenario().perturb(small_mesh())
