"""Tests of SCVNN-CVNN mutual learning (Section III-C)."""

import numpy as np
import pytest

from repro.assignment import get_scheme
from repro.core.config import TrainingConfig
from repro.core.distillation import MutualLearningResult, MutualLearningTrainer
from repro.data import DataLoader
from repro.models import ComplexFCNN


def loaders(dataset, batch_size=16):
    return (DataLoader(dataset, batch_size=batch_size, shuffle=True, rng=np.random.default_rng(0)),
            DataLoader(dataset, batch_size=batch_size, shuffle=False))


def build_pair(rng):
    """A split student (half width) and a conventional-assignment teacher."""
    student = ComplexFCNN(18, (10,), 2, decoder="merge", rng=rng)
    teacher = ComplexFCNN(36, (20,), 2, decoder="photodiode", rng=rng)
    return student, teacher


class TestMutualLearning:
    def test_both_networks_learn(self, tiny_flat_dataset, rng):
        student, teacher = build_pair(rng)
        config = TrainingConfig(epochs=5, batch_size=16, learning_rate=0.05,
                                distillation_alpha=1.0, seed=0)
        trainer = MutualLearningTrainer(student, teacher, config,
                                        student_scheme=get_scheme("SI"))
        train_loader, test_loader = loaders(tiny_flat_dataset)
        result = trainer.fit(train_loader, test_loader)
        assert isinstance(result, MutualLearningResult)
        assert result.student_test_accuracy > 0.75
        assert result.teacher_test_accuracy > 0.75
        assert len(result.student_history.train_loss) == 5
        assert result.student_history.train_loss[-1] < result.student_history.train_loss[0]

    def test_teacher_defaults_to_conventional_assignment(self, rng):
        student, teacher = build_pair(rng)
        trainer = MutualLearningTrainer(student, teacher, TrainingConfig(epochs=1),
                                        student_scheme=get_scheme("SI"))
        assert trainer.teacher_scheme.name == "conventional"

    def test_alpha_zero_reduces_to_independent_training(self, tiny_flat_dataset, rng):
        """With alpha = 0 the distillation terms vanish; the losses are plain CE."""
        student, teacher = build_pair(rng)
        config = TrainingConfig(epochs=1, batch_size=16, learning_rate=0.05,
                                distillation_alpha=0.0, seed=0)
        trainer = MutualLearningTrainer(student, teacher, config,
                                        student_scheme=get_scheme("SI"))
        train_loader, test_loader = loaders(tiny_flat_dataset)
        result = trainer.fit(train_loader, test_loader)
        assert np.isfinite(result.student_history.train_loss[0])

    def test_single_step_updates_both_models(self, tiny_flat_dataset, rng):
        student, teacher = build_pair(rng)
        config = TrainingConfig(epochs=1, batch_size=8, learning_rate=0.1, seed=0)
        trainer = MutualLearningTrainer(student, teacher, config,
                                        student_scheme=get_scheme("SI"))
        images = np.stack([tiny_flat_dataset[i][0] for i in range(8)])
        labels = np.array([tiny_flat_dataset[i][1] for i in range(8)])
        student_before = student.trunk[0].weight_real.data.copy()
        teacher_before = teacher.trunk[0].weight_real.data.copy()
        student_loss, teacher_loss = trainer._mutual_step(images, labels)
        assert np.isfinite(student_loss) and np.isfinite(teacher_loss)
        assert not np.allclose(student.trunk[0].weight_real.data, student_before)
        assert not np.allclose(teacher.trunk[0].weight_real.data, teacher_before)

    def test_distillation_pulls_student_towards_teacher(self, tiny_flat_dataset, rng):
        """With a huge alpha the student's predictions approach the teacher's."""
        from repro.core.training import prepare_batch
        from repro.tensor import no_grad
        from repro.tensor.functional import softmax

        student, teacher = build_pair(rng)
        config = TrainingConfig(epochs=6, batch_size=16, learning_rate=0.05,
                                distillation_alpha=10.0, seed=0)
        trainer = MutualLearningTrainer(student, teacher, config,
                                        student_scheme=get_scheme("SI"))
        train_loader, _ = loaders(tiny_flat_dataset)
        trainer.fit(train_loader)

        images = np.stack([tiny_flat_dataset[i][0] for i in range(16)])
        with no_grad():
            student_probabilities = softmax(student(prepare_batch(images, get_scheme("SI")))).data
            teacher_probabilities = softmax(teacher(prepare_batch(images, get_scheme("conventional")))).data
        agreement = (student_probabilities.argmax(1) == teacher_probabilities.argmax(1)).mean()
        assert agreement > 0.7
