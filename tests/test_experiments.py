"""Tests of the experiment harnesses (tables / figures) and their reporting."""

import json

import numpy as np
import pytest

from repro.experiments import PRESETS, get_preset
from repro.experiments.ablations import (
    run_alpha_sweep,
    run_encoder_throughput,
    run_mesh_comparison,
    run_noise_robustness,
    run_pruning_comparison,
    format_alpha_sweep,
    format_mesh_comparison,
    format_noise_robustness,
    format_pruning,
)
from repro.experiments.common import WORKLOADS, get_workload, paper_specs, workload_config
from repro.experiments.fig7 import FIG7_MODELS, device_counts, format_fig7, run_fig7
from repro.experiments.fig8 import area_reduction_at_paper_scale, format_fig8, run_fig8
from repro.experiments.fig9 import format_fig9, normalized_area_at_paper_scale, run_fig9
from repro.experiments.reporting import as_dicts, format_table, percent, save_json
from repro.experiments.table2 import format_table2, paper_area_numbers, run_table2
from repro.experiments.table3 import format_table3, run_table3


class TestPresetsAndWorkloads:
    def test_presets_exist(self):
        for name in ("smoke", "bench", "paper"):
            preset = get_preset(name)
            assert preset.name == name
        with pytest.raises(KeyError):
            get_preset("huge")
        assert set(PRESETS) == {"smoke", "bench", "paper"}

    def test_workload_lookup(self):
        assert get_workload("fcnn").dataset == "mnist"
        assert get_workload("resnet32").dataset == "cifar100"
        with pytest.raises(KeyError):
            get_workload("vgg")
        assert len(WORKLOADS) == 4

    def test_workload_config_respects_preset(self):
        preset = get_preset("smoke")
        config = workload_config(get_workload("fcnn"), preset, seed=3)
        assert config.image_size == preset.fcnn_image
        assert config.training.epochs == preset.epochs
        assert config.training.seed == 3
        cnn_config = workload_config(get_workload("resnet32"), preset)
        assert cnn_config.num_classes == preset.cifar100_classes
        assert cnn_config.depth == preset.resnet_large_depth

    def test_paper_specs_are_full_size(self):
        scvnn_spec, cvnn_spec = paper_specs(get_workload("resnet20"))
        assert scvnn_spec.input_shape == (3, 32, 32)
        assert scvnn_spec.depth == 20 and cvnn_spec.depth == 20
        assert scvnn_spec.width_divider == 1.0


class TestReportingHelpers:
    def test_format_table_alignment(self):
        text = format_table(["name", "value"], [["a", 1.0], ["bb", 0.5]], title="demo")
        assert "demo" in text and "name" in text and "bb" in text

    def test_percent(self):
        assert percent(0.7503) == "75.03%"

    def test_save_json_roundtrip(self, tmp_path):
        rows = run_mesh_comparison(dimensions=[3])
        path = save_json(rows, tmp_path / "mesh.json")
        loaded = json.loads(path.read_text())
        assert loaded[0]["dimension"] == 3

    def test_as_dicts_type_error(self):
        with pytest.raises(TypeError):
            as_dicts([object()])


class TestTable2:
    def test_paper_area_numbers_match_table(self):
        numbers = paper_area_numbers(get_workload("fcnn"))
        assert numbers["original_mzis"] == pytest.approx(31.7e4, rel=0.01)
        assert numbers["proposed_mzis"] == pytest.approx(7.9e4, rel=0.02)
        assert numbers["mzi_reduction"] == pytest.approx(0.75, abs=0.01)

    def test_all_workloads_reduce_by_about_75_percent(self):
        for workload in WORKLOADS:
            reduction = paper_area_numbers(workload)["mzi_reduction"]
            assert reduction == pytest.approx(0.75, abs=0.02)

    def test_run_and_format_smoke(self):
        rows = run_table2(preset="smoke", workloads=["fcnn"])
        assert len(rows) == 1
        row = rows[0]
        assert 0.0 <= row.proposed_accuracy <= 1.0
        assert row.mzi_reduction == pytest.approx(0.75, abs=0.01)
        text = format_table2(rows)
        assert "FCNN" in text and "#MZI Red." in text


class TestTable3:
    def test_run_and_format_smoke(self):
        rows = run_table3(preset="smoke", workloads=["lenet5"])
        assert len(rows) == 1
        assert rows[0].teacher == "LeNet-5"
        assert 0.0 <= rows[0].accuracy_with_ml <= 1.0
        text = format_table3(rows)
        assert "mutual learning" in text.lower() or "ML" in text


class TestFig7:
    def test_device_counts_shape(self):
        for config in FIG7_MODELS:
            counts = device_counts(config)
            assert counts["original"]["dc"] == 1.0
            assert counts["oplixnet"]["dc"] == pytest.approx(0.25, abs=0.03)
            assert counts["oplixnet"]["dc"] < counts["offt"]["dc"] < 1.0

    def test_oplixnet_has_more_parameters_than_offt(self):
        counts = device_counts(FIG7_MODELS[0], block_size=4)
        assert counts["oplixnet"]["parameters"] > counts["offt"]["parameters"]

    def test_run_and_format_smoke(self):
        rows = run_fig7(preset="smoke", models=["Model2"])
        assert len(rows) == 3
        architectures = {row.architecture for row in rows}
        assert architectures == {"original", "offt", "oplixnet"}
        assert "Figure 7" in format_fig7(rows)


class TestFig8:
    def test_area_reductions_at_paper_scale(self):
        fcnn = get_workload("fcnn")
        assert area_reduction_at_paper_scale(fcnn, "SI") == pytest.approx(0.75, abs=0.01)
        assert area_reduction_at_paper_scale(fcnn, "SS") == pytest.approx(0.75, abs=0.01)
        lenet = get_workload("lenet5")
        cl = area_reduction_at_paper_scale(lenet, "CL")
        si = area_reduction_at_paper_scale(lenet, "SI")
        cr = area_reduction_at_paper_scale(lenet, "CR")
        # the paper: SI reduces a few points more than CL on LeNet-5; CR reduces ~90%
        assert si > cl
        assert si - cl == pytest.approx(0.058, abs=0.03)
        assert cr == pytest.approx(0.90, abs=0.05)
        resnet = get_workload("resnet20")
        assert abs(area_reduction_at_paper_scale(resnet, "SI")) < 0.02

    def test_run_and_format_smoke(self):
        rows = run_fig8(preset="smoke", workloads=["fcnn"])
        assert {row.scheme for row in rows} == {"SI", "SH", "SS"}
        assert all(row.area_reduction == pytest.approx(0.75, abs=0.01) for row in rows)
        assert "assignment" in format_fig8(rows).lower()


class TestFig9:
    def test_normalized_areas_follow_paper_ordering(self):
        workload = get_workload("fcnn")
        areas = {decoder: normalized_area_at_paper_scale(workload, decoder)
                 for decoder in ("merge", "linear", "unitary", "coherent")}
        assert areas["coherent"] == pytest.approx(1.0)
        assert 1.0 < areas["merge"] < areas["unitary"] < areas["linear"]
        # the merge overhead is a fraction of a percent (paper: 0.04% - 0.73%)
        assert areas["merge"] - 1.0 < 0.01

    def test_run_and_format_smoke(self):
        rows = run_fig9(preset="smoke", workloads=["fcnn"], decoders=("merge", "coherent"))
        assert len(rows) == 2
        coherent = [row for row in rows if row.decoder == "coherent"][0]
        assert coherent.extra_readout
        assert "decoder" in format_fig9(rows).lower()

    def test_hardware_noise_sweep_smoke(self):
        from repro.experiments.fig9 import format_fig9_hardware, run_fig9_hardware

        rows = run_fig9_hardware(preset="smoke", decoders=("merge",),
                                 sigmas=(0.0, 0.1), trials=3, eval_samples=16)
        assert len(rows) == 2
        clean = [row for row in rows if row.sigma == 0.0][0]
        # the zero-sigma ensemble must reproduce the noiseless deployment
        assert clean.deployed_accuracy == pytest.approx(clean.noiseless_accuracy)
        assert all(row.trials == 3 for row in rows)
        assert all(0.0 <= row.deployed_accuracy <= 1.0 for row in rows)
        assert "hardware" in format_fig9_hardware(rows).lower()


class TestAblations:
    def test_mesh_comparison(self):
        rows = run_mesh_comparison(dimensions=[4, 6])
        assert len(rows) == 4
        for row in rows:
            assert row.reconstruction_error < 1e-9
        reck_depth = [r.optical_depth for r in rows if r.method == "reck" and r.dimension == 6][0]
        clements_depth = [r.optical_depth for r in rows if r.method == "clements" and r.dimension == 6][0]
        assert clements_depth <= reck_depth
        assert "Reck" in format_mesh_comparison(rows)

    def test_encoder_throughput(self):
        rows = run_encoder_throughput(sample_counts=(100,))
        dc = [r for r in rows if r.encoder == "dc"][0]
        ps = [r for r in rows if r.encoder == "ps"][0]
        assert ps.latency_seconds > dc.latency_seconds * 100
        assert ps.has_time_bottleneck and not dc.has_time_bottleneck

    def test_noise_robustness_smoke(self):
        points = run_noise_robustness(preset="smoke", sigmas=(0.0, 0.2), eval_samples=24)
        assert len(points) == 2
        assert all(0.0 <= p.split_onn_accuracy <= 1.0 for p in points)
        assert "phase" in format_noise_robustness(points).lower()

    def test_noise_robustness_batched_trials(self):
        points = run_noise_robustness(preset="smoke", sigmas=(0.0, 0.1),
                                      eval_samples=16, trials=3)
        assert all(p.trials == 3 for p in points)
        assert all(0.0 <= p.split_onn_accuracy <= 1.0 for p in points)
        assert all(0.0 <= p.conventional_onn_accuracy <= 1.0 for p in points)

    def test_alpha_sweep_smoke(self):
        points = run_alpha_sweep(preset="smoke", alphas=(0.0, 1.0), workload_key="fcnn")
        assert [p.alpha for p in points] == [0.0, 1.0]
        assert "alpha" in format_alpha_sweep(points)

    def test_pruning_comparison_smoke(self):
        rows = run_pruning_comparison(preset="smoke", sparsities=(0.75,))
        labels = [row.configuration for row in rows]
        assert any("dense" in label for label in labels)
        assert any("OplixNet" in label for label in labels)
        pruned = [row for row in rows if "pruned" in row.configuration][0]
        assert pruned.mzi_fraction == pytest.approx(0.25, abs=0.01)
        assert "pruning" in format_pruning(rows).lower()


class TestDeployedCnn:
    def test_deployed_cnn_smoke(self):
        from repro.experiments.deployed import format_deployed_cnn, run_deployed_cnn

        rows = run_deployed_cnn(preset="smoke", sigmas=(0.0, 0.05), trials=3,
                                eval_samples=16)
        assert len(rows) == 2
        # the noiseless deployed circuit matches the software model
        assert rows[0].max_logit_error < 1e-8
        assert rows[0].deployed_accuracy == rows[0].software_accuracy
        assert all(r.trials == 3 for r in rows)
        assert all(0.0 <= r.noisy_accuracy <= 1.0 for r in rows)
        assert "im2col" in format_deployed_cnn(rows)

    def test_deployed_resnet_smoke(self):
        from repro.experiments.deployed import format_deployed_resnet, run_deployed_resnet

        rows = run_deployed_resnet(preset="smoke", sigmas=(0.0, 0.05), trials=2,
                                   eval_samples=12)
        assert len(rows) == 2
        # the noiseless graph-compiled circuit matches the software model
        assert rows[0].max_logit_error < 1e-8
        assert rows[0].deployed_accuracy == rows[0].software_accuracy
        assert all(0.0 <= r.noisy_accuracy <= 1.0 for r in rows)
        assert "graph" in format_deployed_resnet(rows)
