"""Tests of the Reck/Clements MZI mesh decompositions."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.photonics import (
    MeshDecomposition,
    MZISetting,
    clements_decompose,
    decompose_unitary,
    is_unitary,
    mzi_count_unitary,
    random_unitary,
    reck_decompose,
)


class TestRandomUnitary:
    def test_is_unitary(self, rng):
        for n in (1, 2, 5, 9):
            assert is_unitary(random_unitary(n, rng))

    def test_invalid_dimension(self):
        with pytest.raises(ValueError):
            random_unitary(0)

    def test_is_unitary_rejects_non_square_and_non_unitary(self, rng):
        assert not is_unitary(rng.normal(size=(3, 4)))
        assert not is_unitary(rng.normal(size=(3, 3)) * 5)


@pytest.mark.parametrize("decompose", [reck_decompose, clements_decompose],
                         ids=["reck", "clements"])
class TestDecompositions:
    @pytest.mark.parametrize("dimension", [1, 2, 3, 5, 8, 13])
    def test_reconstruction(self, decompose, dimension, rng):
        unitary = random_unitary(dimension, rng)
        mesh = decompose(unitary)
        assert np.allclose(mesh.reconstruct(), unitary, atol=1e-9)

    @pytest.mark.parametrize("dimension", [2, 4, 7])
    def test_mzi_count_formula(self, decompose, dimension, rng):
        mesh = decompose(random_unitary(dimension, rng))
        assert mesh.mzi_count == mzi_count_unitary(dimension)
        assert mesh.phase_shifter_count == 2 * mesh.mzi_count + dimension

    def test_apply_matches_matrix_product(self, decompose, rng):
        unitary = random_unitary(6, rng)
        mesh = decompose(unitary)
        vector = rng.normal(size=6) + 1j * rng.normal(size=6)
        assert np.allclose(mesh.apply(vector), unitary @ vector, atol=1e-9)

    def test_apply_batched(self, decompose, rng):
        unitary = random_unitary(5, rng)
        mesh = decompose(unitary)
        batch = rng.normal(size=(7, 5)) + 1j * rng.normal(size=(7, 5))
        assert np.allclose(mesh.apply(batch), batch @ unitary.T, atol=1e-9)

    def test_identity_matrix(self, decompose):
        mesh = decompose(np.eye(4, dtype=complex))
        assert np.allclose(mesh.reconstruct(), np.eye(4), atol=1e-10)

    def test_permutation_matrix(self, decompose):
        permutation = np.eye(4)[[1, 0, 3, 2]].astype(complex)
        mesh = decompose(permutation)
        assert np.allclose(mesh.reconstruct(), permutation, atol=1e-9)

    def test_real_orthogonal_matrix(self, decompose, rng):
        from scipy.stats import ortho_group

        orthogonal = ortho_group.rvs(5, random_state=np.random.RandomState(0)).astype(complex)
        mesh = decompose(orthogonal)
        assert np.allclose(mesh.reconstruct(), orthogonal, atol=1e-9)

    def test_energy_conservation(self, decompose, rng):
        mesh = decompose(random_unitary(6, rng))
        vector = rng.normal(size=6) + 1j * rng.normal(size=6)
        assert np.sum(np.abs(mesh.apply(vector)) ** 2) == pytest.approx(
            np.sum(np.abs(vector) ** 2))

    def test_non_unitary_rejected(self, decompose, rng):
        with pytest.raises(ValueError):
            decompose(rng.normal(size=(4, 4)))
        with pytest.raises(ValueError):
            decompose(rng.normal(size=(3, 4)))

    def test_output_phases_have_unit_modulus(self, decompose, rng):
        mesh = decompose(random_unitary(7, rng))
        assert np.allclose(np.abs(mesh.output_phases), 1.0, atol=1e-9)

    def test_phase_power_is_finite_and_positive(self, decompose, rng):
        mesh = decompose(random_unitary(5, rng))
        power = mesh.total_phase_power_mw()
        assert np.isfinite(power)
        assert power >= 0


class TestMeshStructure:
    def test_apply_dimension_mismatch(self, rng):
        mesh = reck_decompose(random_unitary(4, rng))
        with pytest.raises(ValueError):
            mesh.apply(np.ones(5, dtype=complex))

    def test_dispatch(self, rng):
        unitary = random_unitary(3, rng)
        assert decompose_unitary(unitary, "reck").method == "reck"
        assert decompose_unitary(unitary, "clements").method == "clements"
        with pytest.raises(ValueError):
            decompose_unitary(unitary, "bogus")

    def test_settings_act_on_adjacent_modes_only(self, rng):
        mesh = clements_decompose(random_unitary(6, rng))
        assert all(0 <= setting.mode < 5 for setting in mesh.settings)

    def test_clements_is_shallower_than_reck(self, rng):
        """The rectangular mesh has roughly half the optical depth (ablation claim)."""
        from repro.experiments.ablations import _optical_depth

        unitary = random_unitary(12, rng)
        reck_depth = _optical_depth(reck_decompose(unitary).settings)
        clements_depth = _optical_depth(clements_decompose(unitary).settings)
        assert clements_depth < reck_depth

    def test_manual_mesh_reconstruction(self):
        """A hand-built one-MZI mesh reconstructs to the embedded MZI matrix."""
        setting = MZISetting(mode=0, theta=0.7, phi=0.3)
        mesh = MeshDecomposition(dimension=3, settings=[setting])
        expected = np.eye(3, dtype=complex)
        expected[:2, :2] = setting.transfer_matrix()
        assert np.allclose(mesh.reconstruct(), expected)

    @given(st.integers(2, 9), st.integers(0, 2 ** 16))
    @settings(max_examples=20, deadline=None)
    def test_property_reconstruction_both_methods(self, dimension, seed):
        rng = np.random.default_rng(seed)
        unitary = random_unitary(dimension, rng)
        for decompose in (reck_decompose, clements_decompose):
            mesh = decompose(unitary)
            assert np.abs(mesh.reconstruct() - unitary).max() < 1e-8


class TestVectorizedDecompositionParity:
    """The vectorized nulling paths must match the scalar references to 1e-10."""

    @pytest.mark.parametrize("dimension", [1, 2, 3, 5, 8, 13, 21])
    def test_reck_matches_scalar_reference(self, dimension, rng):
        from repro.photonics import reck_decompose_reference

        unitary = random_unitary(dimension, rng)
        fast = reck_decompose(unitary)
        spec = reck_decompose_reference(unitary)
        assert np.array_equal(fast.modes, spec.modes)
        assert np.abs(fast.thetas - spec.thetas).max(initial=0.0) < 1e-10
        assert np.abs(fast.phis - spec.phis).max(initial=0.0) < 1e-10
        assert np.abs(fast.output_phases - spec.output_phases).max() < 1e-10
        assert np.abs(fast.reconstruct() - spec.reconstruct()).max() < 1e-10

    @pytest.mark.parametrize("dimension", [1, 2, 3, 5, 8, 13, 21])
    def test_clements_matches_scalar_reference(self, dimension, rng):
        from repro.photonics import clements_decompose_reference

        unitary = random_unitary(dimension, rng)
        fast = clements_decompose(unitary)
        spec = clements_decompose_reference(unitary)
        assert np.array_equal(fast.modes, spec.modes)
        assert np.abs(fast.thetas - spec.thetas).max(initial=0.0) < 1e-10
        assert np.abs(fast.phis - spec.phis).max(initial=0.0) < 1e-10
        assert np.abs(fast.output_phases - spec.output_phases).max() < 1e-10
        assert np.abs(fast.reconstruct() - spec.reconstruct()).max() < 1e-10

    @given(st.integers(2, 9), st.integers(0, 2 ** 16))
    @settings(max_examples=15, deadline=None)
    def test_property_parity_both_methods(self, dimension, seed):
        from repro.photonics import (
            clements_decompose_reference,
            reck_decompose_reference,
        )

        rng = np.random.default_rng(seed)
        unitary = random_unitary(dimension, rng)
        for fast, reference in ((reck_decompose, reck_decompose_reference),
                                (clements_decompose, clements_decompose_reference)):
            mesh = fast(unitary)
            spec = reference(unitary)
            assert np.array_equal(mesh.modes, spec.modes)
            assert np.abs(mesh.thetas - spec.thetas).max() < 1e-10
            assert np.abs(mesh.phis - spec.phis).max() < 1e-10
            assert np.abs(mesh.output_phases - spec.output_phases).max() < 1e-10

    @pytest.mark.parametrize("shape", [(3, 8), (13, 32), (40, 12)])
    def test_parity_on_svd_factors_of_nonsquare_weights(self, shape, rng):
        """Dark-subspace phases must be deterministic and path-independent.

        The SVD factors of a non-square weight (the unitaries every real
        deployment feeds the decompositions) contain null-space completion
        rows; the dark-cell clamp parks those MZIs at theta = phi = 0 in both
        the vectorized and the reference paths, so the full phase settings --
        not just the reconstruction -- agree to 1e-10.
        """
        from repro.photonics import (
            clements_decompose_reference,
            reck_decompose_reference,
        )

        weight = rng.normal(size=shape) + 1j * rng.normal(size=shape)
        left, _sv, right = np.linalg.svd(weight, full_matrices=True)
        for unitary in (left, right):
            for fast, reference in ((reck_decompose, reck_decompose_reference),
                                    (clements_decompose, clements_decompose_reference)):
                mesh = fast(unitary)
                spec = reference(unitary)
                assert np.abs(mesh.thetas - spec.thetas).max() < 1e-10
                assert np.abs(mesh.phis - spec.phis).max() < 1e-10
                assert np.abs(mesh.output_phases - spec.output_phases).max() < 1e-10
                assert np.abs(mesh.reconstruct() - unitary).max() < 1e-9


class TestBatchedStackDecomposition:
    """The stack paths must agree with the per-matrix paths to 1e-10."""

    @staticmethod
    def _assert_stack_parity(stack, method):
        from repro.photonics import decompose_unitary_stack

        meshes = decompose_unitary_stack(stack, method=method)
        assert len(meshes) == len(stack)
        for unitary, mesh in zip(stack, meshes):
            reference = decompose_unitary(unitary, method=method)
            assert np.array_equal(mesh.modes, reference.modes)
            assert np.allclose(mesh.thetas, reference.thetas, atol=1e-10)
            assert np.allclose(mesh.phis, reference.phis, atol=1e-10)
            assert np.allclose(mesh.output_phases, reference.output_phases, atol=1e-10)
            assert np.allclose(mesh.reconstruct(), unitary, atol=1e-9)

    @pytest.mark.parametrize("method", ["reck", "clements"])
    @pytest.mark.parametrize("dimension", [1, 2, 5, 12])
    def test_haar_random_stack_matches_per_matrix(self, method, dimension, rng):
        stack = np.stack([random_unitary(dimension, rng) for _ in range(4)])
        self._assert_stack_parity(stack, method)

    @pytest.mark.parametrize("method", ["reck", "clements"])
    def test_rank_deficient_svd_factors(self, method, rng):
        # SVD factors of rank-deficient weights contain null-space completion
        # rows whose nulling pivots are optically dark; the stack path must
        # apply the same dark-cell clamp as the per-matrix path
        stacks = {}
        for rank in (1, 3):
            weight = ((rng.normal(size=(9, rank)) + 1j * rng.normal(size=(9, rank)))
                      @ (rng.normal(size=(rank, 9)) + 1j * rng.normal(size=(rank, 9))))
            left, _sigma, right = np.linalg.svd(weight)
            stacks.setdefault(left.shape[0], []).append(left)
            stacks.setdefault(right.shape[0], []).append(right)
        for dimension, members in stacks.items():
            self._assert_stack_parity(np.stack(members), method)

    @pytest.mark.parametrize("method", ["reck", "clements"])
    def test_non_square_weight_factors(self, method, rng):
        # left (m x m) and right (n x n) factors of non-square weights land in
        # different dimension groups; each group must keep per-matrix parity
        weights = [rng.normal(size=(4, 10)) + 1j * rng.normal(size=(4, 10)),
                   rng.normal(size=(10, 4)) + 1j * rng.normal(size=(10, 4))]
        groups = {}
        for weight in weights:
            left, _sigma, right = np.linalg.svd(weight, full_matrices=True)
            for factor in (left, right):
                groups.setdefault(factor.shape[0], []).append(factor)
        for dimension, members in groups.items():
            self._assert_stack_parity(np.stack(members), method)

    def test_non_unitary_stack_rejected(self, rng):
        from repro.photonics import decompose_unitary_stack

        with pytest.raises(ValueError):
            decompose_unitary_stack(rng.normal(size=(3, 5, 5)) * 2.0)
        with pytest.raises(ValueError):
            decompose_unitary_stack(random_unitary(4, rng))  # missing stack axis


class TestSvdDecomposeMany:
    def test_batched_matches_per_weight(self, rng):
        from repro.photonics import svd_decompose, svd_decompose_many

        weights = [rng.normal(size=(6, 6)) + 1j * rng.normal(size=(6, 6)),
                   rng.normal(size=(6, 6)) + 1j * rng.normal(size=(6, 6)),
                   rng.normal(size=(3, 6)) + 1j * rng.normal(size=(3, 6))]
        batched = svd_decompose_many(weights, batch_unitaries=True)
        for weight, photonic in zip(weights, batched):
            reference = svd_decompose(weight)
            assert photonic.mzi_count == reference.mzi_count
            assert np.abs(photonic.matrix() - weight).max() < 1e-10
            vector = rng.normal(size=(2, weight.shape[1])) + 0j
            assert np.allclose(photonic.apply(vector), reference.apply(vector),
                               atol=1e-10)

    def test_policy_is_stamped_on_meshes(self, rng):
        from repro.photonics import svd_decompose_many

        weights = [rng.normal(size=(4, 4)) + 0j, rng.normal(size=(4, 4)) + 0j]
        matrices = svd_decompose_many(weights, backend="column",
                                      dense_dimension_limit=7)
        for photonic in matrices:
            for mesh in (photonic.left_mesh, photonic.right_mesh):
                assert mesh.backend == "column"
                assert mesh.dense_dimension_limit == 7
        with pytest.raises(ValueError):
            svd_decompose_many(weights, backend="warp")
