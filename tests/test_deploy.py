"""Integration tests: deployed photonic circuits must match the software models."""

import numpy as np
import pytest

from repro.assignment import get_scheme
from repro.core.area_analysis import model_area_report
from repro.core.deploy import DeployedModel, deploy_linear_model
from repro.core.training import prepare_batch
from repro.models import ComplexFCNN, RealFCNN
from repro.photonics.noise import PhaseNoiseModel
from repro.tensor import no_grad


DECODERS = ("merge", "linear", "unitary", "coherent", "photodiode")


def software_logits(model, images, scheme):
    with no_grad():
        return model(prepare_batch(images, scheme)).data


class TestDeploymentFidelity:
    @pytest.mark.parametrize("decoder", DECODERS)
    def test_deployed_logits_match_software(self, decoder, rng):
        scheme = get_scheme("SI")
        model = ComplexFCNN(18, (10,), 4, decoder=decoder, rng=rng)
        # give the calibration non-trivial values so the digital replication is exercised
        model.head.calibration.scale.data[:] = rng.uniform(0.5, 1.5, size=4)
        model.head.calibration.bias.data[:] = rng.normal(size=4)
        deployed = deploy_linear_model(model)
        images = rng.normal(size=(6, 1, 6, 6))
        expected = software_logits(model, images, scheme)
        actual = deployed.predict_logits(images, scheme)
        assert np.allclose(actual, expected, atol=1e-6)

    @pytest.mark.parametrize("method", ["clements", "reck"])
    def test_both_mesh_methods_are_equivalent(self, method, rng):
        scheme = get_scheme("SI")
        model = ComplexFCNN(8, (6,), 3, decoder="merge", rng=rng)
        deployed = deploy_linear_model(model, method=method)
        images = rng.normal(size=(4, 1, 4, 4))
        assert np.allclose(deployed.predict_logits(images, scheme),
                           software_logits(model, images, scheme), atol=1e-6)

    def test_classification_agreement(self, rng):
        scheme = get_scheme("SI")
        model = ComplexFCNN(18, (10,), 3, decoder="merge", rng=rng)
        deployed = deploy_linear_model(model)
        images = rng.normal(size=(10, 1, 6, 6))
        software_predictions = software_logits(model, images, scheme).argmax(axis=1)
        assert np.array_equal(deployed.classify(images, scheme), software_predictions)

    def test_mzi_count_matches_area_report(self, rng):
        model = ComplexFCNN(18, (10,), 4, decoder="merge", rng=rng)
        deployed = deploy_linear_model(model)
        assert deployed.mzi_count == model_area_report(model).total_mzis

    def test_conventional_cvnn_also_deploys(self, rng):
        scheme = get_scheme("conventional")
        model = ComplexFCNN(16, (8,), 3, decoder="photodiode", rng=rng)
        deployed = deploy_linear_model(model)
        images = rng.normal(size=(5, 1, 4, 4))
        assert np.allclose(deployed.predict_logits(images, scheme),
                           software_logits(model, images, scheme), atol=1e-6)

    def test_real_model_rejected(self, rng):
        with pytest.raises(TypeError):
            deploy_linear_model(RealFCNN(16, (8,), 3, rng=rng))


class TestDeploymentUnderNoise:
    def test_zero_noise_copy_is_identical(self, rng):
        scheme = get_scheme("SI")
        model = ComplexFCNN(8, (6,), 2, decoder="merge", rng=rng)
        deployed = deploy_linear_model(model)
        clean_copy = deployed.with_noise(noise=PhaseNoiseModel(sigma=0.0))
        images = rng.normal(size=(3, 1, 4, 4))
        assert np.allclose(deployed.predict_logits(images, scheme),
                           clean_copy.predict_logits(images, scheme))

    def test_noise_changes_logits_but_not_structure(self, rng):
        scheme = get_scheme("SI")
        model = ComplexFCNN(8, (6,), 2, decoder="merge", rng=rng)
        deployed = deploy_linear_model(model)
        noisy = deployed.with_noise(noise=PhaseNoiseModel(sigma=0.1, rng=rng))
        assert noisy.mzi_count == deployed.mzi_count
        images = rng.normal(size=(3, 1, 4, 4))
        assert not np.allclose(deployed.predict_logits(images, scheme),
                               noisy.predict_logits(images, scheme))

    def test_small_noise_small_error(self, rng):
        scheme = get_scheme("SI")
        model = ComplexFCNN(8, (6,), 2, decoder="merge", rng=rng)
        deployed = deploy_linear_model(model)
        images = rng.normal(size=(4, 1, 4, 4))
        clean = deployed.predict_logits(images, scheme)
        errors = []
        for sigma in (1e-4, 1e-2):
            noisy = deployed.with_noise(noise=PhaseNoiseModel(sigma=sigma,
                                                              rng=np.random.default_rng(0)))
            errors.append(np.abs(noisy.predict_logits(images, scheme) - clean).max())
        assert errors[0] < errors[1]
        assert errors[0] < 1e-2

    def test_quantization_applied(self, rng):
        scheme = get_scheme("SI")
        model = ComplexFCNN(8, (6,), 2, decoder="merge", rng=rng)
        deployed = deploy_linear_model(model)
        quantized = deployed.with_noise(quantization_bits=6)
        images = rng.normal(size=(3, 1, 4, 4))
        clean = deployed.predict_logits(images, scheme)
        coarse = quantized.predict_logits(images, scheme)
        assert not np.allclose(clean, coarse)
        fine = deployed.with_noise(quantization_bits=14).predict_logits(images, scheme)
        assert np.abs(fine - clean).max() < np.abs(coarse - clean).max()

    def test_deployed_model_is_a_dataclass_with_encoder(self, rng):
        model = ComplexFCNN(8, (6,), 2, decoder="merge", rng=rng)
        deployed = deploy_linear_model(model)
        assert isinstance(deployed, DeployedModel)
        assert deployed.encoder.name == "dc"
