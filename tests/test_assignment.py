"""Tests of the real-to-complex data assignment schemes (Section III-B)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.assignment import (
    AssignmentResult,
    ChannelLossless,
    ChannelRemapping,
    ConventionalAssignment,
    SpatialHalfHalf,
    SpatialInterlace,
    SpatialSymmetric,
    available_schemes,
    get_scheme,
    rgb_to_two_channels,
)


def images(rng, batch=2, channels=1, height=6, width=5):
    return rng.normal(size=(batch, channels, height, width))


class TestSpatialInterlace:
    def test_packs_adjacent_rows(self, rng):
        data = images(rng, height=4)
        result = SpatialInterlace().assign(data)
        assert result.shape == (2, 1, 2, 5)
        assert np.allclose(result.real[:, :, 0], data[:, :, 0])
        assert np.allclose(result.imag[:, :, 0], data[:, :, 1])
        assert np.allclose(result.real[:, :, 1], data[:, :, 2])
        assert np.allclose(result.imag[:, :, 1], data[:, :, 3])

    def test_inverse_roundtrip(self, rng):
        data = images(rng, height=8)
        scheme = SpatialInterlace()
        assert np.allclose(scheme.inverse(scheme.assign(data)), data)

    def test_odd_height_padded(self, rng):
        data = images(rng, height=5)
        result = SpatialInterlace().assign(data)
        assert result.shape == (2, 1, 3, 5)
        # the padded row is zero and lands in the imaginary part of the last row
        assert np.allclose(result.imag[:, :, -1], 0.0)

    def test_output_shape_and_reduction(self):
        scheme = SpatialInterlace()
        assert scheme.output_shape((1, 28, 28)) == (1, 14, 28)
        assert scheme.input_feature_reduction((1, 28, 28)) == pytest.approx(0.5)
        assert scheme.trunk_width_scale == 0.5
        assert scheme.reduces_spatial and not scheme.reduces_channels


class TestSpatialHalfHalf:
    def test_packs_top_and_bottom_halves(self, rng):
        data = images(rng, height=6)
        result = SpatialHalfHalf().assign(data)
        assert np.allclose(result.real, data[:, :, :3])
        assert np.allclose(result.imag, data[:, :, 3:])

    def test_inverse_roundtrip(self, rng):
        data = images(rng, height=6)
        scheme = SpatialHalfHalf()
        assert np.allclose(scheme.inverse(scheme.assign(data)), data)


class TestSpatialSymmetric:
    def test_packs_point_reflections(self, rng):
        data = images(rng, height=4, width=3)
        result = SpatialSymmetric().assign(data)
        # pixel (0, 0) is paired with pixel (H-1, W-1)
        assert np.allclose(result.real[:, :, 0, 0], data[:, :, 0, 0])
        assert np.allclose(result.imag[:, :, 0, 0], data[:, :, 3, 2])

    def test_inverse_roundtrip(self, rng):
        data = images(rng, height=6, width=4)
        scheme = SpatialSymmetric()
        assert np.allclose(scheme.inverse(scheme.assign(data)), data)

    def test_same_area_reduction_as_interlace(self):
        assert (SpatialSymmetric().output_shape((1, 28, 28))
                == SpatialInterlace().output_shape((1, 28, 28)))


class TestChannelLossless:
    def test_three_channel_packing(self, rng):
        data = images(rng, channels=3)
        result = ChannelLossless().assign(data)
        assert result.shape == (2, 2, 6, 5)
        assert np.allclose(result.real[:, 0], data[:, 0])   # R -> real of channel 0
        assert np.allclose(result.imag[:, 0], data[:, 1])   # G -> imag of channel 0
        assert np.allclose(result.real[:, 1], data[:, 2])   # B -> real of channel 1
        assert np.allclose(result.imag[:, 1], 0.0)           # padded imaginary part

    def test_even_channel_packing_roundtrip(self, rng):
        data = images(rng, channels=4)
        scheme = ChannelLossless()
        result = scheme.assign(data)
        assert result.shape[1] == 2
        assert np.allclose(scheme.inverse(result), data)

    def test_three_channel_inverse_recovers_with_padding(self, rng):
        data = images(rng, channels=3)
        scheme = ChannelLossless()
        recovered = scheme.inverse(scheme.assign(data))
        assert np.allclose(recovered[:, :3], data)
        assert np.allclose(recovered[:, 3], 0.0)

    def test_output_shape(self):
        assert ChannelLossless().output_shape((3, 32, 32)) == (2, 32, 32)
        assert ChannelLossless().output_shape((4, 32, 32)) == (2, 32, 32)
        assert ChannelLossless().trunk_width_scale == 0.5


class TestChannelRemapping:
    def test_output_is_single_complex_channel(self, rng):
        data = images(rng, channels=3)
        result = ChannelRemapping().assign(data)
        assert result.shape == (2, 1, 6, 5)

    def test_mapping_function(self, rng):
        data = images(rng, channels=3)
        two = rgb_to_two_channels(data)
        assert np.allclose(two[:, 0], data.mean(axis=1))
        assert np.allclose(two[:, 1], (data[:, 0] - data[:, 2]) / 2.0)

    def test_is_lossy(self, rng):
        scheme = ChannelRemapping()
        assert not scheme.lossless
        with pytest.raises(NotImplementedError):
            scheme.inverse(scheme.assign(images(rng, channels=3)))

    def test_requires_three_channels(self, rng):
        with pytest.raises(ValueError):
            ChannelRemapping().assign(images(rng, channels=4))
        with pytest.raises(ValueError):
            ChannelRemapping().output_shape((1, 8, 8))

    def test_discards_green_magenta_axis(self, rng):
        """Two images differing only along the discarded colour axis map identically."""
        base = images(rng, channels=3)
        shifted = base.copy()
        shifted[:, 0] += 0.3   # +r
        shifted[:, 1] -= 0.6   # -2g
        shifted[:, 2] += 0.3   # +b  -> same luminance, same (r - b)
        a = ChannelRemapping().assign(base)
        b = ChannelRemapping().assign(shifted)
        assert np.allclose(a.as_complex(), b.as_complex())

    def test_width_scale_is_one_third(self):
        assert ChannelRemapping().trunk_width_scale == pytest.approx(1.0 / 3.0)


class TestConventional:
    def test_identity_amplitude_only(self, rng):
        data = images(rng, channels=3)
        result = ConventionalAssignment().assign(data)
        assert np.allclose(result.real, data)
        assert np.allclose(result.imag, 0.0)
        assert ConventionalAssignment().output_shape((3, 32, 32)) == (3, 32, 32)
        assert np.allclose(ConventionalAssignment().inverse(result), data)


class TestRegistryAndResult:
    def test_all_names_resolve(self):
        for name in ["SI", "SH", "SS", "CL", "CR", "conventional", "spatial_interlace",
                     "channel_lossless", "si", "cl"]:
            assert get_scheme(name) is not None

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            get_scheme("does-not-exist")

    def test_available_schemes(self):
        names = available_schemes()
        assert {"SI", "SH", "SS", "CL", "CR", "conventional"} <= set(names)

    def test_result_validation(self, rng):
        with pytest.raises(ValueError):
            AssignmentResult(rng.normal(size=(1, 1, 2, 2)), rng.normal(size=(1, 1, 3, 2)))

    def test_result_as_complex(self, rng):
        real = rng.normal(size=(1, 1, 2, 2))
        imag = rng.normal(size=(1, 1, 2, 2))
        assert np.allclose(AssignmentResult(real, imag).as_complex(), real + 1j * imag)

    def test_three_dim_input_promoted_to_batch(self, rng):
        result = SpatialInterlace().assign(rng.normal(size=(1, 4, 4)))
        assert result.shape == (1, 1, 2, 4)

    def test_bad_rank_rejected(self, rng):
        with pytest.raises(ValueError):
            SpatialInterlace().assign(rng.normal(size=(4, 4)))


class TestPropertyBased:
    @given(st.integers(2, 10), st.integers(2, 10), st.integers(1, 3), st.integers(0, 2 ** 16))
    @settings(max_examples=30, deadline=None)
    def test_lossless_schemes_roundtrip(self, height, width, channels, seed):
        rng = np.random.default_rng(seed)
        data = rng.normal(size=(2, channels, height, width))
        for scheme in (SpatialInterlace(), SpatialHalfHalf(), SpatialSymmetric()):
            if height % 2 == 1:
                continue  # padding makes the inverse recover a padded image
            assert np.allclose(scheme.inverse(scheme.assign(data)), data)

    @given(st.integers(2, 8), st.integers(2, 8), st.integers(0, 2 ** 16))
    @settings(max_examples=30, deadline=None)
    def test_feature_count_preserved_by_lossless_packing(self, height, width, seed):
        """A lossless packing stores every real value exactly once."""
        rng = np.random.default_rng(seed)
        data = rng.normal(size=(1, 2, height, width))
        for scheme_name in ("SI", "SH", "SS", "CL"):
            scheme = get_scheme(scheme_name)
            result = scheme.assign(data)
            packed = result.real.size + result.imag.size
            assert packed >= data.size
            # every original value appears somewhere in the packed representation
            packed_values = np.sort(np.concatenate([result.real.ravel(), result.imag.ravel()]))
            for value in data.ravel()[:5]:
                index = np.searchsorted(packed_values, value)
                index = min(index, packed_values.size - 1)
                nearest = min(abs(packed_values[index] - value),
                              abs(packed_values[max(index - 1, 0)] - value))
                assert nearest < 1e-12
