"""Tests of the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_subcommands_registered(self):
        parser = build_parser()
        actions = {action.dest: action for action in parser._subparsers._group_actions}
        choices = actions["command"].choices
        assert set(choices) >= {"table2", "table3", "fig7", "fig8", "fig9", "ablations",
                                "area", "deploy-cnn", "deploy-resnet", "scenarios"}

    def test_serve_takes_recalibration_flags(self):
        args = build_parser().parse_args(
            ["serve", "--recalibrate", "--drift-s", "60", "--drift-sigma", "0.3"])
        assert args.recalibrate and args.drift_s == 60.0

    def test_precompile_takes_prune_bounds(self):
        args = build_parser().parse_args(
            ["precompile", "--store", "./s", "--prune-max-entries", "4",
             "--prune-max-age-days", "7"])
        assert args.prune_max_entries == 4
        assert args.prune_max_age_days == 7.0

    def test_deploy_subcommands_take_method_and_backend(self):
        parser = build_parser()
        for command in ("deploy-cnn", "deploy-resnet"):
            args = parser.parse_args([command, "--preset", "smoke",
                                      "--method", "reck", "--backend", "column"])
            assert args.method == "reck"
            assert args.backend == "column"

    def test_deploy_rejects_unknown_backend(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["deploy-resnet", "--backend", "warp"])

    def test_requires_a_command(self, capsys):
        with pytest.raises(SystemExit):
            main([])

    def test_rejects_unknown_preset(self):
        with pytest.raises(SystemExit):
            main(["table2", "--preset", "gigantic"])


class TestExecution:
    def test_area_command_prints_paper_numbers(self, capsys):
        assert main(["area"]) == 0
        output = capsys.readouterr().out
        assert "FCNN" in output and "ResNet-32" in output
        assert "31.7" in output        # the paper's FCNN MZI count (x1e4)

    def test_table2_smoke_with_json_output(self, tmp_path, capsys):
        output_path = tmp_path / "rows.json"
        assert main(["table2", "--preset", "smoke", "--workloads", "fcnn",
                     "--output", str(output_path)]) == 0
        stdout = capsys.readouterr().out
        assert "Table II" in stdout
        rows = json.loads(output_path.read_text())
        assert rows[0]["model"] == "FCNN"

    def test_fig9_smoke_single_workload(self, capsys):
        assert main(["fig9", "--preset", "smoke", "--workloads", "fcnn"]) == 0
        assert "decoder" in capsys.readouterr().out.lower()

    def test_scenarios_lists_the_registry(self, capsys):
        assert main(["scenarios"]) == 0
        output = capsys.readouterr().out
        for name in ("thermal_drift", "crosstalk", "fabrication"):
            assert name in output

    def test_precompile_populates_then_warm_hits(self, tmp_path, capsys):
        store = tmp_path / "store"
        argv = ["precompile", "--store", str(store), "--preset", "smoke",
                "--workloads", "fcnn"]
        assert main(argv) == 0
        assert "compiled + stored" in capsys.readouterr().out
        # the second build of the identical deployment comes off the store
        assert main(argv) == 0
        assert "warm hit" in capsys.readouterr().out
        output_path = tmp_path / "precompile.json"
        assert main(argv + ["--refresh", "--output", str(output_path)]) == 0
        assert "rewritten" in capsys.readouterr().out
        report = json.loads(output_path.read_text())
        assert report["stats"]["saves"] == 1 and report["stats"]["deletes"] == 1
