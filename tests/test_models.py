"""Tests of the model zoo and the factory sizing rules."""

import numpy as np
import pytest

from repro.core.area_analysis import compare_area, model_area_report
from repro.models import (
    ComplexFCNN,
    ComplexLeNet5,
    ComplexResNet,
    ModelSpec,
    RealFCNN,
    RealLeNet5,
    RealResNet,
    build_model,
    complex_trunk_widths,
    resnet_depth_to_blocks,
)
from repro.nn.complex import ComplexTensor
from repro.tensor import Tensor, no_grad


def complex_input(rng, shape):
    return ComplexTensor(Tensor(rng.normal(size=shape)), Tensor(rng.normal(size=shape)))


class TestFCNNModels:
    def test_real_fcnn_shapes(self, rng):
        model = RealFCNN(36, (20,), 5, rng=rng)
        out = model(Tensor(rng.normal(size=(4, 1, 6, 6))))
        assert out.shape == (4, 5)

    def test_complex_fcnn_shapes(self, rng):
        model = ComplexFCNN(18, (10,), 5, decoder="merge", rng=rng)
        out = model(complex_input(rng, (4, 18)))
        assert out.shape == (4, 5)

    def test_complex_fcnn_flattens_image_input(self, rng):
        model = ComplexFCNN(16, (8,), 3, rng=rng)
        out = model(complex_input(rng, (2, 1, 4, 4)))
        assert out.shape == (2, 3)

    def test_no_hidden_layer(self, rng):
        model = ComplexFCNN(10, (), 4, rng=rng)
        assert model(complex_input(rng, (3, 10))).shape == (3, 4)


class TestLeNetModels:
    def test_real_lenet_paper_configuration(self, rng):
        model = RealLeNet5(in_channels=3, num_classes=10, image_size=(32, 32), rng=rng)
        with no_grad():
            out = model(Tensor(rng.normal(size=(2, 3, 32, 32))))
        assert out.shape == (2, 10)

    def test_complex_lenet_small_kernel(self, rng):
        model = ComplexLeNet5(in_channels=2, num_classes=10, image_size=(16, 16),
                              channels=(3, 8), hidden_sizes=(30, 21),
                              kernel_size=3, padding=1, rng=rng)
        with no_grad():
            out = model(complex_input(rng, (2, 2, 16, 16)))
        assert out.shape == (2, 10)

    def test_too_small_image_rejected(self, rng):
        with pytest.raises(ValueError):
            RealLeNet5(image_size=(8, 8), rng=rng)


class TestResNetModels:
    def test_depth_to_blocks(self):
        assert resnet_depth_to_blocks(20) == 3
        assert resnet_depth_to_blocks(32) == 5
        assert resnet_depth_to_blocks(56) == 9
        assert resnet_depth_to_blocks(8) == 1
        with pytest.raises(ValueError):
            resnet_depth_to_blocks(21)

    def test_real_resnet_forward(self, rng):
        model = RealResNet(depth=8, in_channels=3, num_classes=4, base_widths=(4, 8, 16), rng=rng)
        with no_grad():
            out = model(Tensor(rng.normal(size=(2, 3, 16, 16))))
        assert out.shape == (2, 4)

    def test_complex_resnet_forward(self, rng):
        model = ComplexResNet(depth=8, in_channels=2, num_classes=4, base_widths=(2, 4, 8),
                              decoder="merge", rng=rng)
        with no_grad():
            out = model(complex_input(rng, (2, 2, 16, 16)))
        assert out.shape == (2, 4)

    def test_downsample_paths_exist_between_stages(self, rng):
        model = RealResNet(depth=8, base_widths=(4, 8, 16), rng=rng)
        downsamples = [block.downsample for block in model.stages if block.downsample is not None]
        assert len(downsamples) == 2  # stage transitions 1->2 and 2->3


class TestFactory:
    def test_rvnn_cvnn_scvnn_shapes(self, rng):
        for flavour, assignment in (("rvnn", None), ("cvnn", None), ("scvnn", "SI")):
            spec = ModelSpec("fcnn", flavour, (1, 8, 8), 4, assignment=assignment,
                             hidden_sizes=(12,))
            model = build_model(spec, rng=rng)
            if flavour == "rvnn":
                out = model(Tensor(rng.normal(size=(2, 1, 8, 8))))
            else:
                channels, height, width = spec.complex_input_shape()
                out = model(complex_input(rng, (2, channels, height, width)))
            assert out.shape == (2, 4)

    def test_scvnn_requires_assignment(self):
        with pytest.raises(ValueError):
            ModelSpec("fcnn", "scvnn", (1, 8, 8), 4)

    def test_unknown_architecture_or_flavour(self):
        with pytest.raises(ValueError):
            ModelSpec("mlp", "rvnn", (1, 8, 8), 4)
        with pytest.raises(ValueError):
            ModelSpec("fcnn", "quantum", (1, 8, 8), 4)

    def test_width_scaling_rules(self):
        assert complex_trunk_widths((100, 50), 0.5) == (50, 25)
        assert complex_trunk_widths((100,), 1.0) == (100,)
        assert complex_trunk_widths((9,), 1 / 3) == (3,)
        assert complex_trunk_widths((100,), True) == (50,)
        with pytest.raises(ValueError):
            complex_trunk_widths((10,), 0.0)

    def test_channel_vs_hidden_scaling(self):
        spec_cl = ModelSpec("lenet5", "scvnn", (3, 32, 32), 10, assignment="CL")
        assert spec_cl.channel_width_scale() == 0.5
        assert spec_cl.hidden_width_scale() == 0.5

        spec_si = ModelSpec("lenet5", "scvnn", (3, 32, 32), 10, assignment="SI")
        assert spec_si.channel_width_scale() == 1.0     # spatial schemes keep CONV widths
        assert spec_si.hidden_width_scale() == 0.5      # but FC layers shrink

        spec_cr = ModelSpec("resnet", "scvnn", (3, 32, 32), 10, assignment="CR")
        assert spec_cr.channel_width_scale() == pytest.approx(1 / 3)

        spec_cvnn = ModelSpec("lenet5", "cvnn", (3, 32, 32), 10)
        assert spec_cvnn.channel_width_scale() == 1.0

    def test_scvnn_fcnn_halves_input_and_hidden(self, rng):
        spec = ModelSpec("fcnn", "scvnn", (1, 28, 28), 10, assignment="SI", hidden_sizes=(100,))
        model = build_model(spec, rng=rng)
        assert model.in_features == 392
        assert model.hidden_sizes == [50]

    def test_cvnn_keeps_full_size(self, rng):
        spec = ModelSpec("fcnn", "cvnn", (1, 28, 28), 10, hidden_sizes=(100,))
        model = build_model(spec, rng=rng)
        assert model.in_features == 784
        assert model.hidden_sizes == [100]

    def test_width_divider(self, rng):
        spec = ModelSpec("fcnn", "cvnn", (1, 8, 8), 10, hidden_sizes=(100,), width_divider=4)
        model = build_model(spec, rng=rng)
        assert model.hidden_sizes == [25]
        with pytest.raises(ValueError):
            ModelSpec("fcnn", "cvnn", (1, 8, 8), 10, width_divider=0.5)


class TestPaperAreaNumbers:
    """The MZI counts of Table II, evaluated on the full-size models."""

    @pytest.mark.parametrize("architecture,num_classes,depth,orig,prop", [
        ("fcnn", 10, 20, 31.7e4, 7.9e4),
        ("lenet5", 10, 20, 11.5e4, 2.9e4),
        ("resnet", 10, 20, 116.6e4, 29.1e4),
    ])
    def test_table2_mzi_counts(self, architecture, num_classes, depth, orig, prop):
        input_shape = (1, 28, 28) if architecture == "fcnn" else (3, 32, 32)
        assignment = "SI" if architecture == "fcnn" else "CL"
        scvnn = build_model(ModelSpec(architecture, "scvnn", input_shape, num_classes,
                                      assignment=assignment, decoder="merge", depth=depth))
        cvnn = build_model(ModelSpec(architecture, "cvnn", input_shape, num_classes,
                                     decoder="photodiode", depth=depth))
        comparison = compare_area(scvnn, cvnn)
        assert comparison["baseline_mzis"] == pytest.approx(orig, rel=0.02)
        assert comparison["proposed_mzis"] == pytest.approx(prop, rel=0.05)
        assert comparison["reduction"] == pytest.approx(0.75, abs=0.015)

    def test_resnet32_cifar100_reduction(self):
        scvnn = build_model(ModelSpec("resnet", "scvnn", (3, 32, 32), 100,
                                      assignment="CL", decoder="merge", depth=32))
        cvnn = build_model(ModelSpec("resnet", "cvnn", (3, 32, 32), 100,
                                     decoder="photodiode", depth=32))
        comparison = compare_area(scvnn, cvnn)
        assert comparison["baseline_mzis"] == pytest.approx(205.1e4, rel=0.02)
        assert comparison["reduction"] == pytest.approx(0.75, abs=0.02)

    def test_channel_remapping_reduces_further(self):
        """CR reaches ~90% reduction (Fig. 8) at the cost of information loss."""
        cr = build_model(ModelSpec("resnet", "scvnn", (3, 32, 32), 10,
                                   assignment="CR", decoder="merge", depth=20))
        cvnn = build_model(ModelSpec("resnet", "cvnn", (3, 32, 32), 10,
                                     decoder="photodiode", depth=20))
        reduction = compare_area(cr, cvnn)["reduction"]
        assert reduction == pytest.approx(0.89, abs=0.03)

    def test_spatial_assignment_does_not_shrink_resnet(self):
        """SI on a ResNet yields (almost) no area reduction (discussed around Fig. 8)."""
        si = build_model(ModelSpec("resnet", "scvnn", (3, 32, 32), 10,
                                   assignment="SI", decoder="merge", depth=20))
        cvnn = build_model(ModelSpec("resnet", "cvnn", (3, 32, 32), 10,
                                     decoder="photodiode", depth=20))
        reduction = compare_area(si, cvnn)["reduction"]
        assert abs(reduction) < 0.02

    def test_area_report_lists_every_weight_layer(self):
        model = build_model(ModelSpec("fcnn", "scvnn", (1, 28, 28), 10, assignment="SI"))
        report = model_area_report(model)
        assert len(report.layers) == 2      # hidden layer + merged head
        assert report.total_mzis > 0
