"""Tests of the optical encoders, detectors and the area model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.photonics import (
    AmplitudeEncoder,
    AreaReport,
    CoherentDetector,
    DCComplexEncoder,
    LayerArea,
    PhotodiodeDetector,
    PSComplexEncoder,
    count_conv_layer,
    count_linear_layer,
    mzi_count_matrix,
    mzi_count_unitary,
    MZI_DC_COUNT,
    MZI_PS_COUNT,
)


class TestDCComplexEncoder:
    @given(st.floats(-5, 5), st.floats(-5, 5))
    @settings(max_examples=50, deadline=None)
    def test_pair_encoding_is_a1_plus_j_a2(self, a1, a2):
        """The transfer-matrix simulation of the DC encoder yields A1 + j A2 (Fig. 3a)."""
        encoded = DCComplexEncoder().encode_pair(a1, a2)
        assert encoded.real == pytest.approx(a1, abs=1e-9)
        assert encoded.imag == pytest.approx(a2, abs=1e-9)

    def test_vectorised_encode_matches_pairwise(self, rng):
        encoder = DCComplexEncoder()
        real, imag = rng.normal(size=8), rng.normal(size=8)
        vectorised = encoder.encode(real, imag)
        pairwise = np.array([encoder.encode_pair(a, b) for a, b in zip(real, imag)])
        assert np.allclose(vectorised, pairwise)

    def test_shape_mismatch_rejected(self, rng):
        with pytest.raises(ValueError):
            DCComplexEncoder().encode(rng.normal(size=3), rng.normal(size=4))

    def test_no_thermal_bottleneck(self):
        encoder = DCComplexEncoder()
        assert not encoder.has_time_bottleneck
        budget = encoder.area_budget(100)
        assert budget.thermal_phase_shifters == 0
        assert budget.directional_couplers == 100
        assert budget.modulators == 200

    def test_latency_is_modulator_limited(self):
        assert DCComplexEncoder().encoding_latency(10 ** 6) < 1e-3


class TestPSComplexEncoder:
    def test_encodes_same_complex_value(self, rng):
        encoder = PSComplexEncoder()
        real, imag = rng.normal(size=5), rng.normal(size=5)
        assert np.allclose(encoder.encode(real, imag), real + 1j * imag)
        assert encoder.encode_pair(0.3, 0.4) == pytest.approx(0.3 + 0.4j)

    def test_thermal_bottleneck_dominates_latency(self):
        ps_encoder = PSComplexEncoder()
        dc_encoder = DCComplexEncoder()
        assert ps_encoder.has_time_bottleneck
        assert ps_encoder.encoding_latency(1000) > 1000 * dc_encoder.encoding_latency(1000)

    def test_area_budget_uses_thermal_shifters(self):
        budget = PSComplexEncoder().area_budget(10)
        assert budget.thermal_phase_shifters == 10
        assert budget.directional_couplers == 0


class TestAmplitudeEncoder:
    def test_amplitude_only(self, rng):
        encoder = AmplitudeEncoder()
        real = rng.normal(size=4)
        assert np.allclose(encoder.encode(real), real.astype(complex))
        with pytest.raises(ValueError):
            encoder.encode(real, np.ones(4))


class TestDetectors:
    def test_photodiode_modes(self, rng):
        signal = rng.normal(size=5) + 1j * rng.normal(size=5)
        assert np.allclose(PhotodiodeDetector("power").detect(signal), np.abs(signal) ** 2)
        assert np.allclose(PhotodiodeDetector("amplitude").detect(signal), np.abs(signal))
        with pytest.raises(ValueError):
            PhotodiodeDetector("bogus").detect(signal)

    def test_coherent_detector_recovers_complex_field(self, rng):
        signal = rng.normal(size=9) + 1j * rng.normal(size=9)
        for amplitude in (0.5, 1.0, 3.0):
            recovered = CoherentDetector(reference_amplitude=amplitude).detect(signal)
            assert np.allclose(recovered, signal)

    def test_coherent_detector_costs_extra(self):
        detector = CoherentDetector()
        assert detector.detectors_required(10) == 30
        assert detector.readout_latency(100) > 0
        assert detector.needs_post_processing
        assert PhotodiodeDetector().readout_latency(100) == 0.0

    def test_invalid_reference(self, rng):
        with pytest.raises(ValueError):
            CoherentDetector(reference_amplitude=0.0).detect(np.ones(2, dtype=complex))


class TestAreaModel:
    def test_unitary_count(self):
        assert mzi_count_unitary(4) == 6
        assert mzi_count_unitary(1) == 0
        with pytest.raises(ValueError):
            mzi_count_unitary(-1)

    def test_matrix_count_formula(self):
        # the paper's formula: n(n-1)/2 + min(m, n) + m(m-1)/2
        assert mzi_count_matrix(10, 100) == 100 * 99 // 2 + 10 + 10 * 9 // 2
        assert mzi_count_matrix(100, 784) == 784 * 783 // 2 + 100 + 100 * 99 // 2
        assert mzi_count_matrix(0, 5) == 0

    def test_paper_fcnn_total(self):
        """FCNN 784-100-10 needs ~31.7e4 MZIs (Table II, 'Orig.' column)."""
        total = mzi_count_matrix(100, 784) + mzi_count_matrix(10, 100)
        assert total == pytest.approx(31.7e4, rel=0.01)

    def test_paper_split_fcnn_total(self):
        """The split FCNN 392-50-(2x10) needs ~7.9e4 MZIs (Table II, 'Prop.')."""
        total = mzi_count_matrix(50, 392) + mzi_count_matrix(20, 50)
        assert total == pytest.approx(7.9e4, rel=0.01)
        original = mzi_count_matrix(100, 784) + mzi_count_matrix(10, 100)
        assert 1 - total / original == pytest.approx(0.75, abs=0.01)

    def test_layer_counters(self):
        linear = count_linear_layer("fc", 10, 100)
        assert linear.mzis == mzi_count_matrix(10, 100)
        assert linear.parameters == 1000
        assert linear.directional_couplers == MZI_DC_COUNT * linear.mzis
        assert linear.phase_shifters == MZI_PS_COUNT * linear.mzis

        complex_linear = count_linear_layer("fc", 10, 100, complex_valued=True)
        assert complex_linear.mzis == linear.mzis            # same optical area
        assert complex_linear.parameters == 2000             # twice the parameters

        conv = count_conv_layer("conv", 16, 6, (5, 5))
        assert conv.rows == 16 and conv.cols == 150
        assert conv.mzis == mzi_count_matrix(16, 150)

    def test_area_report_aggregation_and_reduction(self):
        baseline = AreaReport([count_linear_layer("a", 100, 784), count_linear_layer("b", 10, 100)])
        proposed = AreaReport([count_linear_layer("a", 50, 392, complex_valued=True),
                               count_linear_layer("b", 20, 50, complex_valued=True)])
        assert proposed.reduction_versus(baseline) == pytest.approx(0.75, abs=0.01)
        assert baseline.total_mzis > proposed.total_mzis
        assert "TOTAL" in baseline.summary()

    def test_reduction_against_empty_baseline_rejected(self):
        with pytest.raises(ValueError):
            AreaReport().reduction_versus(AreaReport())

    def test_negative_dims_rejected(self):
        with pytest.raises(ValueError):
            mzi_count_matrix(-1, 5)
