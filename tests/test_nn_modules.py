"""Tests of the Module/Parameter container machinery."""

import numpy as np
import pytest

from repro.nn import Linear, Module, ModuleList, ReLU, Sequential, BatchNorm1d
from repro.nn.module import Parameter
from repro.tensor import Tensor


class TwoLayer(Module):
    def __init__(self):
        super().__init__()
        self.first = Linear(4, 8)
        self.second = Linear(8, 2)
        self.gain = Parameter(np.ones(1))

    def forward(self, x):
        return self.second(self.first(x).relu()) * self.gain


class TestRegistration:
    def test_parameters_are_collected(self):
        model = TwoLayer()
        names = [name for name, _ in model.named_parameters()]
        assert "first.weight" in names and "second.bias" in names and "gain" in names
        assert len(model.parameters()) == 5

    def test_num_parameters(self):
        model = TwoLayer()
        assert model.num_parameters() == 4 * 8 + 8 + 8 * 2 + 2 + 1

    def test_named_modules_includes_children(self):
        model = TwoLayer()
        names = [name for name, _ in model.named_modules()]
        assert "" in names and "first" in names and "second" in names

    def test_sequential_iteration_and_indexing(self):
        seq = Sequential(Linear(3, 4), ReLU(), Linear(4, 2))
        assert len(seq) == 3
        assert isinstance(seq[1], ReLU)
        assert len(list(iter(seq))) == 3
        out = seq(Tensor(np.zeros((2, 3))))
        assert out.shape == (2, 2)

    def test_sequential_append(self):
        seq = Sequential(Linear(3, 3))
        seq.append(Linear(3, 2))
        assert len(seq) == 2
        assert len(seq.parameters()) == 4

    def test_module_list(self):
        items = ModuleList([Linear(2, 2), Linear(2, 2)])
        assert len(items) == 2
        assert isinstance(items[0], Linear)
        assert len(items.parameters()) == 4
        with pytest.raises(NotImplementedError):
            items(Tensor(np.zeros((1, 2))))


class TestTrainEvalAndGradients:
    def test_train_eval_propagates(self):
        model = Sequential(Linear(3, 3), BatchNorm1d(3))
        model.eval()
        assert all(not module.training for module in model.modules())
        model.train()
        assert all(module.training for module in model.modules())

    def test_zero_grad_clears_all(self):
        model = TwoLayer()
        out = model(Tensor(np.random.randn(3, 4))).sum()
        out.backward()
        assert any(p.grad is not None for p in model.parameters())
        model.zero_grad()
        assert all(p.grad is None for p in model.parameters())


class TestStateDict:
    def test_roundtrip(self):
        model = TwoLayer()
        state = model.state_dict()
        clone = TwoLayer()
        clone.load_state_dict(state)
        for (name_a, param_a), (name_b, param_b) in zip(model.named_parameters(),
                                                        clone.named_parameters()):
            assert name_a == name_b
            assert np.allclose(param_a.data, param_b.data)

    def test_state_dict_is_a_copy(self):
        model = TwoLayer()
        state = model.state_dict()
        state["gain"][0] = 123.0
        assert model.gain.data[0] == 1.0

    def test_buffers_saved_and_restored(self):
        bn = BatchNorm1d(4)
        bn(Tensor(np.random.randn(16, 4)))
        state = bn.state_dict()
        fresh = BatchNorm1d(4)
        fresh.load_state_dict(state)
        assert np.allclose(fresh.running_mean, bn.running_mean)
        assert np.allclose(fresh.running_var, bn.running_var)

    def test_strict_mismatch_raises(self):
        model = TwoLayer()
        state = model.state_dict()
        state.pop("gain")
        with pytest.raises(KeyError):
            model.load_state_dict(state, strict=True)
        model.load_state_dict(state, strict=False)   # tolerated when not strict

    def test_shape_mismatch_raises(self):
        model = TwoLayer()
        state = model.state_dict()
        state["gain"] = np.ones(3)
        with pytest.raises(ValueError):
            model.load_state_dict(state)
