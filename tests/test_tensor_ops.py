"""Unit tests of the autograd engine's primitive operations."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.tensor import Tensor, gradcheck, no_grad, is_grad_enabled
from repro.tensor import ops


def make(shape, rng, requires_grad=True):
    return Tensor(rng.normal(size=shape), requires_grad=requires_grad)


class TestBasicArithmetic:
    def test_add_forward(self, rng):
        a, b = rng.normal(size=(3, 4)), rng.normal(size=(3, 4))
        assert np.allclose((Tensor(a) + Tensor(b)).data, a + b)

    def test_scalar_operands(self, rng):
        a = rng.normal(size=(3, 4))
        assert np.allclose((Tensor(a) + 2.5).data, a + 2.5)
        assert np.allclose((2.5 - Tensor(a)).data, 2.5 - a)
        assert np.allclose((Tensor(a) * 3).data, a * 3)
        assert np.allclose((1.0 / Tensor(np.abs(a) + 1)).data, 1.0 / (np.abs(a) + 1))

    def test_add_backward(self, rng):
        a, b = make((3, 4), rng), make((3, 4), rng)
        gradcheck(lambda: (a + b).sum(), [a, b])

    def test_sub_mul_div_backward(self, rng):
        a, b = make((2, 5), rng), make((2, 5), rng)
        b.data = b.data + 3.0  # keep divisor away from zero
        gradcheck(lambda: ((a - b) * a / b).sum(), [a, b])

    def test_neg_pow_backward(self, rng):
        a = make((4,), rng)
        a.data = np.abs(a.data) + 0.5
        gradcheck(lambda: ((-a) ** 3).sum(), [a])

    def test_broadcast_backward(self, rng):
        a = make((3, 4), rng)
        b = make((4,), rng)
        c = make((3, 1), rng)
        gradcheck(lambda: ((a + b) * c).sum(), [a, b, c])

    def test_gradient_accumulates_on_reuse(self, rng):
        a = make((3,), rng)
        out = (a * a + a).sum()
        out.backward()
        assert np.allclose(a.grad, 2 * a.data + 1)

    def test_maximum_ties_split(self):
        a = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        b = Tensor(np.array([1.0, 0.0]), requires_grad=True)
        ops.maximum(a, b).sum().backward()
        assert np.allclose(a.grad, [0.5, 1.0])
        assert np.allclose(b.grad, [0.5, 0.0])


class TestMatmul:
    def test_matrix_matrix(self, rng):
        a, b = make((3, 4), rng), make((4, 5), rng)
        gradcheck(lambda: (a @ b).sum(), [a, b])

    def test_batched(self, rng):
        a, b = make((2, 3, 4), rng), make((2, 4, 5), rng)
        gradcheck(lambda: ((a @ b) ** 2).sum(), [a, b])

    def test_vector_matrix(self, rng):
        a, b = make((4,), rng), make((4, 5), rng)
        gradcheck(lambda: (a @ b).sum(), [a, b])

    def test_matrix_vector(self, rng):
        a, b = make((3, 4), rng), make((4,), rng)
        gradcheck(lambda: (a @ b).sum(), [a, b])

    def test_inner_product(self, rng):
        a, b = make((6,), rng), make((6,), rng)
        gradcheck(lambda: (a @ b) * 1.0, [a, b])

    def test_forward_matches_numpy(self, rng):
        a, b = rng.normal(size=(5, 7)), rng.normal(size=(7, 2))
        assert np.allclose((Tensor(a) @ Tensor(b)).data, a @ b)


class TestElementwise:
    @pytest.mark.parametrize("op_name", ["exp", "tanh", "sigmoid", "relu", "abs", "sqrt", "log"])
    def test_unary_gradients(self, op_name, rng):
        a = make((3, 4), rng)
        if op_name in ("sqrt", "log"):
            a.data = np.abs(a.data) + 0.5
        if op_name == "abs":
            a.data = a.data + np.sign(a.data) * 0.1  # keep away from the kink
        gradcheck(lambda: getattr(ops, op_name)(a).sum(), [a])

    def test_relu_zeroes_negatives(self):
        x = Tensor([[-1.0, 2.0, -0.5, 0.0]])
        assert np.allclose(x.relu().data, [[0.0, 2.0, 0.0, 0.0]])

    def test_leaky_relu(self, rng):
        a = make((5,), rng)
        out = ops.leaky_relu(a, 0.1)
        expected = np.where(a.data > 0, a.data, 0.1 * a.data)
        assert np.allclose(out.data, expected)
        gradcheck(lambda: (ops.leaky_relu(a, 0.1) ** 2).sum(), [a])

    def test_clip(self, rng):
        a = make((10,), rng)
        out = ops.clip(a, -0.5, 0.5)
        assert out.data.max() <= 0.5 and out.data.min() >= -0.5
        a.data = a.data * 0.3  # keep all strictly inside so gradcheck is smooth
        gradcheck(lambda: (ops.clip(a, -0.5, 0.5) * 2).sum(), [a])

    def test_sin_cos(self, rng):
        a = make((4,), rng)
        gradcheck(lambda: (ops.sin(a) + ops.cos(a)).sum(), [a])


class TestReductions:
    def test_sum_axes(self, rng):
        a = make((3, 4, 5), rng)
        gradcheck(lambda: a.sum(axis=1).sum(), [a])
        gradcheck(lambda: (a.sum(axis=(0, 2)) ** 2).sum(), [a])
        gradcheck(lambda: a.sum(axis=2, keepdims=True).sum(), [a])

    def test_mean_and_var(self, rng):
        a = make((4, 6), rng)
        gradcheck(lambda: a.mean(axis=0).sum(), [a])
        gradcheck(lambda: a.var(axis=1).sum(), [a])
        assert np.allclose(a.var().data, a.data.var())

    def test_max_min(self, rng):
        a = make((5, 5), rng)
        assert np.allclose(a.max(axis=0).data, a.data.max(axis=0))
        assert np.allclose(a.min().data, a.data.min())
        gradcheck(lambda: a.max(axis=1).sum(), [a])

    def test_logsumexp_matches_naive(self, rng):
        a = make((6, 3), rng)
        naive = np.log(np.exp(a.data).sum(axis=1))
        assert np.allclose(ops.logsumexp(a, axis=1).data, naive)
        gradcheck(lambda: ops.logsumexp(a, axis=1).sum(), [a])

    def test_logsumexp_is_stable_for_large_inputs(self):
        a = Tensor(np.array([[1000.0, 1000.0]]), requires_grad=True)
        out = ops.logsumexp(a, axis=1)
        assert np.isfinite(out.data).all()


class TestShapeOps:
    def test_reshape_flatten(self, rng):
        a = make((2, 3, 4), rng)
        gradcheck(lambda: (a.reshape(6, 4) ** 2).sum(), [a])
        assert a.flatten(start_dim=1).shape == (2, 12)

    def test_transpose(self, rng):
        a = make((2, 3, 4), rng)
        assert a.transpose(2, 0, 1).shape == (4, 2, 3)
        gradcheck(lambda: (a.transpose(2, 0, 1) ** 2).sum(), [a])
        assert a.T.shape == (4, 3, 2)

    def test_swapaxes(self, rng):
        a = make((2, 3, 4), rng)
        assert a.swapaxes(0, 2).shape == (4, 3, 2)

    def test_getitem(self, rng):
        a = make((5, 6), rng)
        gradcheck(lambda: (a[1:4, ::2] ** 2).sum(), [a])
        gradcheck(lambda: (a[np.array([0, 0, 2])] ** 2).sum(), [a])

    def test_concatenate_and_stack(self, rng):
        a, b = make((2, 3), rng), make((4, 3), rng)
        out = ops.concatenate([a, b], axis=0)
        assert out.shape == (6, 3)
        gradcheck(lambda: (ops.concatenate([a, b], axis=0) ** 2).sum(), [a, b])
        c, d = make((3,), rng), make((3,), rng)
        gradcheck(lambda: (ops.stack([c, d], axis=1) ** 2).sum(), [c, d])

    def test_pad(self, rng):
        a = make((3, 4), rng)
        out = ops.pad(a, ((1, 1), (2, 0)), constant_value=0.0)
        assert out.shape == (5, 6)
        gradcheck(lambda: (ops.pad(a, 1) ** 2).sum(), [a])

    def test_pad_invalid_width(self, rng):
        a = make((3, 4), rng)
        with pytest.raises(ValueError):
            ops.pad(a, ((1, 1), (1, 1), (1, 1)))

    def test_where(self, rng):
        a, b = make((4, 4), rng), make((4, 4), rng)
        condition = rng.random((4, 4)) > 0.5
        out = ops.where(condition, a, b)
        assert np.allclose(out.data, np.where(condition, a.data, b.data))
        gradcheck(lambda: (ops.where(condition, a, b) ** 2).sum(), [a, b])


class TestGraphMechanics:
    def test_backward_requires_scalar(self, rng):
        a = make((3,), rng)
        with pytest.raises(RuntimeError):
            (a * 2).backward()

    def test_backward_on_non_grad_tensor_raises(self):
        a = Tensor([1.0, 2.0])
        with pytest.raises(RuntimeError):
            a.backward()

    def test_no_grad_disables_graph(self, rng):
        a = make((3,), rng)
        with no_grad():
            out = (a * 2).sum()
            assert not out.requires_grad
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_detach_blocks_gradient(self, rng):
        a = make((3,), rng)
        out = (a.detach() * 3 + a).sum()
        out.backward()
        assert np.allclose(a.grad, np.ones(3))

    def test_diamond_graph_gradients(self, rng):
        a = make((3,), rng)
        left = a * 2
        right = a * 3
        (left + right).sum().backward()
        assert np.allclose(a.grad, np.full(3, 5.0))

    def test_deep_chain_does_not_overflow(self):
        a = Tensor(np.ones(2), requires_grad=True)
        out = a
        for _ in range(500):
            out = out + 1.0
        out.sum().backward()
        assert np.allclose(a.grad, np.ones(2))

    def test_zero_grad(self, rng):
        a = make((3,), rng)
        (a * 2).sum().backward()
        assert a.grad is not None
        a.zero_grad()
        assert a.grad is None

    def test_item_and_len(self):
        assert Tensor([[3.5]]).item() == pytest.approx(3.5)
        with pytest.raises(ValueError):
            Tensor([1.0, 2.0]).item()
        assert len(Tensor(np.zeros((4, 2)))) == 4

    def test_comparisons_return_numpy(self, rng):
        a = make((3,), rng)
        assert isinstance(a > 0, np.ndarray)
        assert isinstance(a <= 0.5, np.ndarray)


class TestPropertyBased:
    @given(st.integers(1, 4), st.integers(1, 4), st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_broadcast_add_gradient_is_correct(self, rows, cols, seed):
        rng = np.random.default_rng(seed)
        a = Tensor(rng.normal(size=(rows, cols)), requires_grad=True)
        b = Tensor(rng.normal(size=(cols,)), requires_grad=True)
        (a + b).sum().backward()
        assert np.allclose(a.grad, np.ones((rows, cols)))
        assert np.allclose(b.grad, np.full(cols, rows))

    @given(st.integers(2, 6), st.integers(2, 6), st.integers(2, 6), st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_matmul_matches_numpy(self, m, k, n, seed):
        rng = np.random.default_rng(seed)
        a, b = rng.normal(size=(m, k)), rng.normal(size=(k, n))
        assert np.allclose((Tensor(a) @ Tensor(b)).data, a @ b)
