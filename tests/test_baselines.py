"""Tests of the baseline architectures: conventional ONN, OFFT [19] and pruning [18]."""

import numpy as np
import pytest

from repro.baselines import (
    BlockCirculantLinear,
    OFFTFCNN,
    build_conventional_onn,
    conventional_area_report,
    magnitude_prune_model,
    offt_device_counts,
    offt_parameter_count,
    pruned_area_report,
    sparsity_of_model,
)
from repro.baselines.offt import conventional_device_counts
from repro.core.area_analysis import model_area_report
from repro.models import ComplexFCNN, RealFCNN
from repro.tensor import Tensor, gradcheck, no_grad


class TestBlockCirculant:
    def test_weight_matrix_is_block_circulant(self, rng):
        layer = BlockCirculantLinear(8, 8, block_size=4, bias=False, rng=rng)
        weight = layer.full_weight().data
        for block_row in range(2):
            for block_col in range(2):
                block = weight[block_row * 4:(block_row + 1) * 4, block_col * 4:(block_col + 1) * 4]
                # every diagonal of a circulant block is constant
                for offset in range(4):
                    diagonal = np.array([block[(i + offset) % 4, i] for i in range(4)])
                    assert np.allclose(diagonal, diagonal[0])

    def test_parameter_count_is_reduced(self, rng):
        layer = BlockCirculantLinear(16, 8, block_size=4, rng=rng)
        assert layer.parameter_count == (8 // 4) * (16 // 4) * 4
        assert layer.parameter_count == offt_parameter_count(8, 16, 4)

    def test_forward_shape_with_padding(self, rng):
        layer = BlockCirculantLinear(10, 6, block_size=4, rng=rng)
        out = layer(Tensor(rng.normal(size=(3, 10))))
        assert out.shape == (3, 6)

    def test_forward_matches_materialised_weight(self, rng):
        layer = BlockCirculantLinear(8, 4, block_size=4, bias=False, rng=rng)
        x = rng.normal(size=(2, 8))
        with no_grad():
            expected = x @ layer.full_weight().data.T
            out = layer(Tensor(x)).data
        assert np.allclose(out, expected[:, :4])

    def test_gradients_flow_to_block_parameters(self, rng):
        layer = BlockCirculantLinear(4, 4, block_size=2, rng=rng)
        x = Tensor(rng.normal(size=(2, 4)), requires_grad=True)
        gradcheck(lambda: (layer(x) ** 2).sum(), [x, layer.block_weights], atol=1e-4)

    def test_invalid_block_size(self):
        with pytest.raises(ValueError):
            BlockCirculantLinear(4, 4, block_size=0)

    def test_offt_fcnn_trains_shape(self, rng):
        model = OFFTFCNN(16, (8,), 3, block_size=4, rng=rng)
        out = model(Tensor(rng.normal(size=(5, 1, 4, 4))))
        assert out.shape == (5, 3)
        assert model.layer_shapes() == [(8, 16), (3, 8)]


class TestOFFTDeviceCounts:
    def test_parameter_compression(self):
        assert offt_parameter_count(400, 784, 4) == 100 * 196 * 4
        counts = offt_device_counts([(400, 784), (10, 400)], block_size=4)
        original = conventional_device_counts([(400, 784), (10, 400)])
        assert counts.parameters < original.parameters

    def test_offt_reduces_devices_but_less_than_oplixnet(self):
        """Fig. 7 shape: original > OFFT > OplixNet in DC count."""
        from repro.experiments.fig7 import FIG7_MODELS, device_counts

        for config in FIG7_MODELS:
            counts = device_counts(config, block_size=4)
            assert counts["offt"]["dc"] < 1.0
            assert counts["offt"]["ps"] < 1.0
            assert counts["oplixnet"]["dc"] < counts["offt"]["dc"]
            assert counts["oplixnet"]["ps"] < counts["offt"]["ps"]
            # OplixNet keeps more parameters than the OFFT compression
            assert counts["oplixnet"]["parameters"] > counts["offt"]["parameters"]

    def test_block_size_must_be_power_of_two(self):
        with pytest.raises(ValueError):
            offt_device_counts([(8, 8)], block_size=3)


class TestConventionalBaseline:
    def test_builder_returns_full_width_cvnn(self, rng):
        model = build_conventional_onn("fcnn", (1, 8, 8), 4, rng=rng)
        assert isinstance(model, ComplexFCNN)
        assert model.in_features == 64
        assert model.head.name == "photodiode"

    def test_area_report_matches_model_walk(self):
        report = conventional_area_report("fcnn", (1, 28, 28), 10)
        assert report.total_mzis == pytest.approx(31.7e4, rel=0.01)


class TestPruning:
    def test_prune_reaches_requested_sparsity(self, rng):
        model = RealFCNN(32, (16,), 4, rng=rng)
        removed = magnitude_prune_model(model, 0.5)
        assert removed > 0
        assert sparsity_of_model(model) == pytest.approx(0.5, abs=0.05)

    def test_prune_complex_model(self, rng):
        model = ComplexFCNN(16, (8,), 3, rng=rng)
        magnitude_prune_model(model, 0.75)
        assert sparsity_of_model(model) == pytest.approx(0.75, abs=0.05)

    def test_prune_removes_smallest_weights_first(self, rng):
        model = RealFCNN(8, (), 2, rng=rng)
        weight_before = np.abs(model.network[0].weight.data.copy())
        magnitude_prune_model(model, 0.5)
        weight_after = model.network[0].weight.data
        removed_magnitudes = weight_before[weight_after == 0]
        kept_magnitudes = weight_before[weight_after != 0]
        assert removed_magnitudes.max() <= kept_magnitudes.min() + 1e-12

    def test_invalid_sparsity(self, rng):
        model = RealFCNN(8, (), 2, rng=rng)
        with pytest.raises(ValueError):
            magnitude_prune_model(model, 1.0)
        with pytest.raises(ValueError):
            pruned_area_report(model, -0.1)

    def test_pruned_area_scales_with_kept_fraction(self, rng):
        model = ComplexFCNN(16, (8,), 3, rng=rng)
        dense = model_area_report(model)
        pruned = pruned_area_report(model, 0.75)
        assert pruned.total_mzis == pytest.approx(0.25 * dense.total_mzis, rel=0.02)

    def test_zero_sparsity_keeps_everything(self, rng):
        model = RealFCNN(8, (4,), 2, rng=rng)
        assert magnitude_prune_model(model, 0.0) == 0
        assert sparsity_of_model(model) == 0.0
