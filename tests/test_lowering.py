"""Tests of the lowering pipeline: deployed CNNs, batch-first forward, stages."""

import numpy as np
import pytest

from repro.assignment import get_scheme
from repro.core.area_analysis import model_area_report
from repro.core.deploy import DeployedModel, deploy_model
from repro.core.lowering import (
    AvgPool2dStage,
    Conv2dStage,
    FlattenStage,
    LinearStage,
    complex_im2col,
    lower_complex_conv2d,
    lower_model,
)
from repro.core.training import prepare_batch
from repro.models import ComplexFCNN
from repro.models.lenet import ComplexLeNet5, RealLeNet5
from repro.nn.complex import ComplexConv2d, ComplexTensor
from repro.photonics.noise import PhaseNoiseModel
from repro.tensor import no_grad


DECODERS = ("merge", "linear", "unitary", "coherent", "photodiode")


def tiny_lenet(rng, decoder="merge", num_classes=4):
    return ComplexLeNet5(in_channels=2, num_classes=num_classes, image_size=(12, 12),
                         channels=(3, 4), hidden_sizes=(12, 10), decoder=decoder,
                         kernel_size=3, padding=1, rng=rng)


def software_logits(model, images, scheme):
    with no_grad():
        return model(prepare_batch(images, scheme)).data


class TestComplexIm2col:
    @pytest.mark.parametrize("stride,padding", [((1, 1), (0, 0)), ((2, 2), (1, 1)),
                                                ((1, 2), (2, 0))])
    def test_patches_reproduce_convolution(self, stride, padding, rng):
        conv = ComplexConv2d(3, 5, kernel_size=3, stride=stride, padding=padding, rng=rng)
        images = rng.normal(size=(4, 3, 9, 11)) + 1j * rng.normal(size=(4, 3, 9, 11))
        patches, (out_h, out_w) = complex_im2col(images, (3, 3), stride, padding)
        bias = conv.bias_real.data + 1j * conv.bias_imag.data
        direct = patches @ conv.weight_matrix().T + bias
        expected = conv(ComplexTensor.from_complex_array(images)).to_complex_array()
        assert direct.shape == (4, out_h * out_w, 5)
        lowered = np.moveaxis(direct, -1, -2).reshape(4, 5, out_h, out_w)
        assert np.allclose(lowered, expected, atol=1e-10)

    def test_leading_axes_are_preserved(self, rng):
        maps = rng.normal(size=(2, 3, 1, 6, 6)) + 0j
        patches, (out_h, out_w) = complex_im2col(maps, (2, 2), (2, 2), (0, 0))
        assert patches.shape == (2, 3, out_h * out_w, 4)
        # every leading slice matches an independent extraction
        single, _ = complex_im2col(maps[1, 2], (2, 2), (2, 2), (0, 0))
        assert np.array_equal(patches[1, 2], single)


class TestDeployedCNNFidelity:
    @pytest.mark.parametrize("decoder", DECODERS)
    def test_deployed_cnn_matches_software(self, decoder, rng):
        scheme = get_scheme("CL")
        model = tiny_lenet(rng, decoder=decoder)
        model.head.calibration.scale.data[:] = rng.uniform(0.5, 1.5, size=4)
        model.head.calibration.bias.data[:] = rng.normal(size=4)
        deployed = deploy_model(model)
        images = rng.normal(size=(5, 3, 12, 12))
        expected = software_logits(model, images, scheme)
        actual = deployed.predict_logits(images, scheme)
        assert np.allclose(actual, expected, atol=1e-8)

    @pytest.mark.parametrize("method", ["clements", "reck"])
    def test_both_mesh_methods(self, method, rng):
        scheme = get_scheme("CL")
        model = tiny_lenet(rng)
        deployed = deploy_model(model, method=method)
        images = rng.normal(size=(3, 3, 12, 12))
        assert np.allclose(deployed.predict_logits(images, scheme),
                           software_logits(model, images, scheme), atol=1e-8)

    def test_classification_agreement(self, rng):
        scheme = get_scheme("CL")
        model = tiny_lenet(rng)
        deployed = deploy_model(model)
        images = rng.normal(size=(6, 3, 12, 12))
        assert np.array_equal(deployed.classify(images, scheme),
                              software_logits(model, images, scheme).argmax(axis=1))

    def test_mzi_count_matches_area_report(self, rng):
        model = tiny_lenet(rng)
        deployed = deploy_model(model)
        assert deployed.mzi_count == model_area_report(model).total_mzis

    def test_stage_chain_shape(self, rng):
        program = lower_model(tiny_lenet(rng))
        kinds = [type(stage) for stage in program.stages]
        # conv, pool, conv, pool, flatten, linear, linear, head
        assert kinds[:5] == [Conv2dStage, AvgPool2dStage, Conv2dStage,
                             AvgPool2dStage, FlattenStage]
        assert all(kind is LinearStage for kind in kinds[5:])
        assert program.input_kind == "image"
        assert program.stages[0].activation_after  # CReLU folded into the conv

    def test_unsupported_models_rejected(self, rng):
        with pytest.raises(TypeError):
            deploy_model(RealLeNet5(3, 4, image_size=(12, 12), kernel_size=3,
                                    padding=1, rng=rng))
        from repro.models.resnet import ComplexResNet
        with pytest.raises(TypeError):
            lower_model(ComplexResNet(depth=8, in_channels=2, num_classes=4, rng=rng))


class TestBatchFirstForward:
    def test_cnn_batched_equals_looped(self, rng):
        scheme = get_scheme("CL")
        deployed = deploy_model(tiny_lenet(rng))
        images = rng.normal(size=(5, 3, 12, 12))
        batched = deployed.predict_logits(images, scheme)
        looped = np.concatenate([deployed.predict_logits(images[i:i + 1], scheme)
                                 for i in range(len(images))])
        assert np.allclose(batched, looped, atol=1e-12)

    def test_fcnn_batched_equals_looped(self, rng):
        scheme = get_scheme("SI")
        deployed = deploy_model(ComplexFCNN(18, (10,), 4, decoder="merge", rng=rng))
        images = rng.normal(size=(6, 1, 6, 6))
        batched = deployed.predict_logits(images, scheme)
        looped = np.concatenate([deployed.predict_logits(images[i:i + 1], scheme)
                                 for i in range(len(images))])
        assert np.allclose(batched, looped, atol=1e-12)

    def test_forward_signals_alias(self, rng):
        deployed = deploy_model(ComplexFCNN(8, (6,), 3, decoder="merge", rng=rng))
        vectors = rng.normal(size=(4, 8)) + 1j * rng.normal(size=(4, 8))
        assert np.allclose(deployed.forward(vectors), deployed(vectors))


class TestDeployedCNNUnderNoise:
    def test_trials_axis_composes_with_batch(self, rng):
        scheme = get_scheme("CL")
        deployed = deploy_model(tiny_lenet(rng, num_classes=3))
        images = rng.normal(size=(4, 3, 12, 12))
        noisy = deployed.with_noise(noise=PhaseNoiseModel(sigma=0.02, rng=rng), trials=5)
        logits = noisy.predict_logits(images, scheme)
        assert logits.shape == (5, 4, 3)
        predictions = noisy.classify(images, scheme)
        assert predictions.shape == (5, 4)

    def test_sigma_axis_composes_with_trials(self, rng):
        scheme = get_scheme("CL")
        deployed = deploy_model(tiny_lenet(rng, num_classes=3))
        images = rng.normal(size=(2, 3, 12, 12))
        noise = PhaseNoiseModel(sigma=np.array([0.0, 0.05]), rng=rng)
        logits = deployed.with_noise(noise=noise, trials=3).predict_logits(images, scheme)
        assert logits.shape == (2, 3, 2, 3)
        # the sigma = 0 slice must agree with the clean circuit
        clean = deployed.predict_logits(images, scheme)
        assert np.allclose(logits[0], np.broadcast_to(clean, (3,) + clean.shape),
                           atol=1e-8)

    def test_quantization_through_conv_stages(self, rng):
        scheme = get_scheme("CL")
        deployed = deploy_model(tiny_lenet(rng))
        images = rng.normal(size=(3, 3, 12, 12))
        clean = deployed.predict_logits(images, scheme)
        coarse = deployed.with_noise(quantization_bits=6).predict_logits(images, scheme)
        fine = deployed.with_noise(quantization_bits=14).predict_logits(images, scheme)
        assert not np.allclose(clean, coarse)
        assert np.abs(fine - clean).max() < np.abs(coarse - clean).max()

    def test_with_noise_preserves_structure(self, rng):
        deployed = deploy_model(tiny_lenet(rng))
        noisy = deployed.with_noise(noise=PhaseNoiseModel(sigma=0.1, rng=rng))
        assert noisy.mzi_count == deployed.mzi_count
        assert noisy.input_kind == "image"
        assert isinstance(noisy, DeployedModel)


class TestConvStageValidation:
    def test_channel_mismatch_raises(self, rng):
        stage = lower_complex_conv2d(ComplexConv2d(2, 3, 3, rng=rng), "conv")
        with pytest.raises(ValueError):
            stage.forward(np.ones((1, 4, 8, 8), dtype=complex))

    def test_missing_spatial_axes_raise(self, rng):
        stage = lower_complex_conv2d(ComplexConv2d(2, 3, 3, rng=rng), "conv")
        with pytest.raises(ValueError):
            stage.forward(np.ones((4, 8), dtype=complex))
