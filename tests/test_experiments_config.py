"""Additional tests of experiment configuration plumbing and power modelling."""

import numpy as np
import pytest

from repro.core.config import ExperimentConfig, TrainingConfig
from repro.experiments.common import get_workload, training_config, workload_config
from repro.experiments.fig7 import FIG7_MODELS, Fig7ModelConfig, _oplixnet_shapes
from repro.experiments.presets import get_preset
from repro.photonics import random_unitary, reck_decompose
from repro.photonics.components import MAX_PHASE_SHIFTER_POWER_MW


class TestExperimentConfig:
    def test_input_shape_property(self):
        config = ExperimentConfig(name="x", channels=3, image_size=(16, 20))
        assert config.input_shape == (3, 16, 20)

    def test_default_training_config(self):
        config = ExperimentConfig(name="x")
        assert isinstance(config.training, TrainingConfig)
        assert config.training.distillation_alpha == 1.0    # the paper's alpha

    def test_training_config_overrides_via_helper(self):
        preset = get_preset("smoke")
        config = training_config(preset, seed=7, epochs=1, distillation_alpha=0.5)
        assert config.epochs == 1
        assert config.seed == 7
        assert config.distillation_alpha == 0.5

    def test_workload_config_lenet_kernel_choice(self):
        """Non-paper presets shrink LeNet's kernels so small images still fit."""
        smoke = workload_config(get_workload("lenet5"), get_preset("smoke"))
        assert (smoke.lenet_kernel, smoke.lenet_padding) == (3, 1)
        paper = workload_config(get_workload("lenet5"), get_preset("paper"))
        assert (paper.lenet_kernel, paper.lenet_padding) == (5, 0)

    def test_preset_fcnn_features(self):
        assert get_preset("paper").fcnn_features() == 784
        assert get_preset("bench").fcnn_features() == 196


class TestFig7Configs:
    def test_model_labels_match_paper(self):
        labels = [config.label for config in FIG7_MODELS]
        assert labels[0] == "Model1-(28x28)-400-10"
        assert labels[1] == "Model2-(14x14)-70-10"
        assert labels[2] == "Model3-(28x28)-400-128-10"
        assert labels[3] == "Model4-(14x14)-160-160-10"

    def test_layer_shapes(self):
        config = Fig7ModelConfig("ModelX", (14, 14), (160, 160))
        assert config.layer_shapes() == [(160, 196), (160, 160), (10, 160)]
        assert config.input_features == 196

    def test_oplixnet_shapes_halve_widths_and_merge_head(self):
        config = FIG7_MODELS[0]   # (28x28)-400-10
        shapes = _oplixnet_shapes(config)
        assert shapes[0] == (200, 392)     # halved hidden on halved input
        assert shapes[-1] == (20, 200)     # merged decoder doubles the output


class TestMeshPowerModel:
    def test_power_scales_with_mesh_size(self, rng):
        small = reck_decompose(random_unitary(4, rng))
        large = reck_decompose(random_unitary(12, rng))
        assert large.total_phase_power_mw() > small.total_phase_power_mw()

    def test_power_upper_bound(self, rng):
        mesh = reck_decompose(random_unitary(6, rng))
        # every tunable phase shifter consumes at most the full-swing power
        upper = MAX_PHASE_SHIFTER_POWER_MW * (2 * mesh.mzi_count + mesh.dimension)
        assert 0 <= mesh.total_phase_power_mw() <= upper

    def test_identity_mesh_power_is_low(self):
        mesh = reck_decompose(np.eye(5, dtype=complex))
        # the identity needs theta = pi ("bar state") on the diagonal MZIs but no
        # input phases, so the power stays well below half of the full swing
        full_swing = MAX_PHASE_SHIFTER_POWER_MW * (2 * mesh.mzi_count + 5)
        assert mesh.total_phase_power_mw() < 0.6 * full_swing
