"""Tests of the ``repro.compile`` graph compiler API.

Covers the compiler entry point and its dataclasses, the graph IR produced
for residual models (fan-out, electronic skip adds, folded batch norms), the
execution-policy threading that replaced the module globals, and the
deprecated ``deploy_model`` / ``lower_model`` shims.
"""

import numpy as np
import pytest

import repro
from repro.assignment import get_scheme
from repro.core.area_analysis import model_area_report
from repro.core.compile import CompiledProgram, CompileOptions, HardwareTarget
from repro.core.graph_ir import INPUT, ElectronicAdd, ElectronicBatchNorm, GraphProgram
from repro.core.lowering import Conv2dStage, LinearStage
from repro.core.training import prepare_batch
from repro.models import ComplexFCNN
from repro.models.lenet import ComplexLeNet5
from repro.models.resnet import ComplexResNet, RealResNet
from repro.nn.normalization import _BatchNorm
from repro.photonics.noise import PhaseNoiseModel
from repro.tensor import no_grad

DECODERS = ("merge", "linear", "unitary", "coherent", "photodiode")


def randomize_batchnorms(model, rng):
    """Give every batch norm non-trivial running statistics and affine params."""
    for _name, module in model.named_modules():
        if isinstance(module, _BatchNorm):
            module._set_buffer("running_mean", rng.normal(size=module.num_features) * 0.3)
            module._set_buffer("running_var", rng.uniform(0.5, 2.0, size=module.num_features))
            if module.affine:
                module.weight.data[:] = rng.uniform(0.5, 1.5, size=module.num_features)
                module.bias.data[:] = rng.normal(size=module.num_features) * 0.2


def tiny_resnet(rng, decoder="merge", num_classes=3):
    model = ComplexResNet(depth=8, in_channels=2, num_classes=num_classes,
                          base_widths=(2, 3, 4), decoder=decoder, rng=rng)
    randomize_batchnorms(model, rng)
    model.head.calibration.scale.data[:] = rng.uniform(0.5, 1.5, size=num_classes)
    model.head.calibration.bias.data[:] = rng.normal(size=num_classes)
    return model


def tiny_lenet(rng, decoder="merge", num_classes=4):
    return ComplexLeNet5(in_channels=2, num_classes=num_classes, image_size=(12, 12),
                         channels=(3, 4), hidden_sizes=(12, 10), decoder=decoder,
                         kernel_size=3, padding=1, rng=rng)


def software_logits(model, images, scheme):
    model.eval()
    with no_grad():
        return model(prepare_batch(images, scheme)).data


class TestCompileEntryPoint:
    def test_top_level_export(self):
        from repro.core.compile import compile as compile_function

        assert repro.compile is compile_function
        assert repro.HardwareTarget is HardwareTarget
        assert repro.CompileOptions is CompileOptions

    def test_compiled_lenet_is_a_chain_program(self, rng):
        program = repro.compile(tiny_lenet(rng))
        assert isinstance(program, CompiledProgram)
        assert isinstance(program.graph, GraphProgram)
        assert program.graph.is_chain
        assert program.input_kind == "image"
        kinds = [type(stage) for stage in program.stages]
        assert kinds.count(Conv2dStage) == 2
        assert kinds.count(LinearStage) == 3

    def test_compiled_fcnn_matches_software(self, rng):
        scheme = get_scheme("SI")
        model = ComplexFCNN(18, (10,), 4, decoder="merge", rng=rng)
        program = repro.compile(model)
        images = rng.normal(size=(6, 1, 6, 6))
        assert np.allclose(program.predict_logits(images, scheme),
                           software_logits(model, images, scheme), atol=1e-6)

    def test_unsupported_model_rejected(self, rng):
        with pytest.raises(TypeError, match="register_lowering"):
            repro.compile(RealResNet(depth=8, in_channels=3, num_classes=3,
                                     base_widths=(2, 3, 4), rng=rng))

    def test_invalid_target_and_options(self):
        with pytest.raises(ValueError):
            HardwareTarget(method="butterfly")
        with pytest.raises(ValueError):
            HardwareTarget(trials=4)          # trials without a noise model
        with pytest.raises(ValueError):
            CompileOptions(backend="warp")
        with pytest.raises(ValueError):
            CompileOptions(dense_dimension_limit=-1)


class TestResNetGraphCompile:
    @pytest.mark.parametrize("decoder", DECODERS)
    def test_resnet_matches_software_on_all_decoder_heads(self, decoder, rng):
        scheme = get_scheme("CL")
        model = tiny_resnet(rng, decoder=decoder)
        program = repro.compile(model)
        images = rng.normal(size=(4, 3, 8, 8))
        expected = software_logits(model, images, scheme)
        actual = program.predict_logits(images, scheme)
        assert np.abs(actual - expected).max() <= 1e-8

    @pytest.mark.parametrize("method", ["clements", "reck"])
    def test_both_mesh_methods(self, method, rng):
        scheme = get_scheme("CL")
        model = tiny_resnet(rng)
        program = repro.compile(model, target=HardwareTarget(method=method))
        images = rng.normal(size=(3, 3, 8, 8))
        assert np.abs(program.predict_logits(images, scheme)
                      - software_logits(model, images, scheme)).max() <= 1e-8

    def test_graph_has_skip_adds_and_fanout(self, rng):
        program = repro.compile(tiny_resnet(rng))
        graph = program.graph
        assert not graph.is_chain
        adds = [node for node in graph.nodes if isinstance(node.op, ElectronicAdd)]
        assert len(adds) == 3                      # one skip add per basic block
        assert all(len(node.inputs) == 2 for node in adds)
        # batch norms fold into electronic affine nodes, not mesh stages
        assert any(isinstance(node.op, ElectronicBatchNorm) for node in graph.nodes)
        # at least one producer fans out to two consumers (branch + skip)
        consumers = {}
        for node in graph.nodes:
            for name in node.inputs:
                consumers[name] = consumers.get(name, 0) + 1
        assert max(consumers.values()) >= 2
        with pytest.raises(TypeError):
            program.stages                          # no chain form

    def test_mzi_count_matches_area_report(self, rng):
        model = tiny_resnet(rng)
        program = repro.compile(model)
        assert program.mzi_count == model_area_report(model).total_mzis

    def test_batched_equals_looped(self, rng):
        scheme = get_scheme("CL")
        program = repro.compile(tiny_resnet(rng))
        images = rng.normal(size=(4, 3, 8, 8))
        batched = program.predict_logits(images, scheme)
        looped = np.concatenate([program.predict_logits(images[i:i + 1], scheme)
                                 for i in range(len(images))])
        assert np.allclose(batched, looped, atol=1e-12)

    def test_noise_trials_and_sigma_axes(self, rng):
        scheme = get_scheme("CL")
        program = repro.compile(tiny_resnet(rng))
        images = rng.normal(size=(2, 3, 8, 8))
        noise = PhaseNoiseModel(sigma=np.array([0.0, 0.05]), rng=rng)
        logits = program.with_noise(noise=noise, trials=3).predict_logits(images, scheme)
        assert logits.shape == (2, 3, 2, 3)        # (sigmas, trials, batch, classes)
        clean = program.predict_logits(images, scheme)
        # the sigma = 0 slice must agree with the clean circuit; the identity
        # skip branches broadcast against the trials axes of the mesh branches
        assert np.allclose(logits[0], np.broadcast_to(clean, (3,) + clean.shape),
                           atol=1e-8)

    def test_unbatched_decomposition_matches_batched(self, rng):
        scheme = get_scheme("CL")
        model = tiny_resnet(rng)
        images = rng.normal(size=(2, 3, 8, 8))
        batched = repro.compile(model).predict_logits(images, scheme)
        sequential = repro.compile(
            model, options=CompileOptions(batch_unitaries=False)
        ).predict_logits(images, scheme)
        assert np.allclose(batched, sequential, atol=1e-10)


class TestExecutionPolicy:
    def test_backend_is_threaded_to_every_mesh(self, rng):
        program = repro.compile(tiny_lenet(rng),
                                options=CompileOptions(backend="column",
                                                       dense_dimension_limit=5))
        meshes = [mesh for stage in program.stages if isinstance(stage, (LinearStage, Conv2dStage))
                  for mesh in (stage.layer.photonic_matrix.left_mesh,
                               stage.layer.photonic_matrix.right_mesh)]
        assert meshes
        assert all(mesh.backend == "column" for mesh in meshes)
        assert all(mesh.dense_dimension_limit == 5 for mesh in meshes)

    @pytest.mark.parametrize("options", [CompileOptions(backend="dense"),
                                         CompileOptions(backend="column"),
                                         CompileOptions(dense_dimension_limit=0)],
                             ids=["dense", "column", "limit0"])
    def test_backends_agree_numerically(self, options, rng):
        scheme = get_scheme("CL")
        model = tiny_lenet(rng)
        images = rng.normal(size=(3, 3, 12, 12))
        reference = repro.compile(model).predict_logits(images, scheme)
        assert np.allclose(repro.compile(model, options=options)
                           .predict_logits(images, scheme), reference, atol=1e-9)

    def test_per_compile_limits_do_not_share_state(self, rng):
        # two programs with different limits coexist: no global was mutated
        from repro.photonics import engine

        before = engine.DENSE_DIMENSION_LIMIT
        model = tiny_lenet(rng)
        dense_program = repro.compile(model, options=CompileOptions(dense_dimension_limit=999))
        column_program = repro.compile(model, options=CompileOptions(dense_dimension_limit=0))
        assert engine.DENSE_DIMENSION_LIMIT == before
        sample = dense_program.stages[0].layer.photonic_matrix.left_mesh
        assert sample.dense_dimension_limit == 999
        sample = column_program.stages[0].layer.photonic_matrix.left_mesh
        assert sample.dense_dimension_limit == 0

    def test_target_noise_is_baked_in(self, rng):
        scheme = get_scheme("CL")
        model = tiny_lenet(rng)
        target = HardwareTarget(noise=PhaseNoiseModel.seeded(0.03, seed=11), trials=4)
        program = repro.compile(model, target=target)
        logits = program.predict_logits(rng.normal(size=(2, 3, 12, 12)), scheme)
        assert logits.shape == (4, 2, 4)           # (trials, batch, classes)

    def test_quantization_target(self, rng):
        scheme = get_scheme("CL")
        model = tiny_lenet(rng)
        images = rng.normal(size=(2, 3, 12, 12))
        clean = repro.compile(model).predict_logits(images, scheme)
        coarse = repro.compile(model, target=HardwareTarget(quantization_bits=6))
        assert not np.allclose(coarse.predict_logits(images, scheme), clean)


class TestQuantizationEndToEnd:
    """``HardwareTarget.quantization_bits`` through the full compile pipeline."""

    BITS = (10, 8, 6, 4)        # sensible DAC resolutions; below ~3 bits the
    #                             phase wrap-around makes the error non-monotone

    def test_accuracy_degrades_monotonically_with_fewer_bits(self, rng):
        scheme = get_scheme("CL")
        model = tiny_lenet(rng)
        images = rng.normal(size=(24, 3, 12, 12))
        clean = repro.compile(model).predict_logits(images, scheme)
        clean_predictions = clean.argmax(axis=-1)
        errors, agreements = [], []
        for bits in self.BITS:
            program = repro.compile(model, target=HardwareTarget(quantization_bits=bits))
            logits = program.predict_logits(images, scheme)
            errors.append(float(np.abs(logits - clean).max()))
            agreements.append(float((logits.argmax(axis=-1)
                                     == clean_predictions).mean()))
        # fewer bits -> strictly larger logit error, no better agreement
        for fine, coarse in zip(errors, errors[1:]):
            assert coarse > fine
        for fine, coarse in zip(agreements, agreements[1:]):
            assert coarse <= fine

    @pytest.mark.parametrize("bits", [4, 6])
    def test_with_noise_quantization_equals_compile_time(self, bits, rng):
        scheme = get_scheme("CL")
        model = tiny_lenet(rng)
        images = rng.normal(size=(4, 3, 12, 12))
        at_compile = repro.compile(
            model, target=HardwareTarget(quantization_bits=bits))
        post_hoc = repro.compile(model).with_noise(quantization_bits=bits)
        assert np.allclose(post_hoc.predict_logits(images, scheme),
                           at_compile.predict_logits(images, scheme), atol=1e-12)
        assert post_hoc.target.quantization_bits == bits

    def test_quantized_program_keeps_mzi_count(self, rng):
        model = tiny_lenet(rng)
        clean = repro.compile(model)
        coarse = repro.compile(model, target=HardwareTarget(quantization_bits=5))
        assert coarse.mzi_count == clean.mzi_count


class TestDeprecatedShims:
    def test_deploy_model_warns_and_matches_compile(self, rng):
        from repro.core.deploy import DeployedModel, deploy_model

        scheme = get_scheme("CL")
        model = tiny_lenet(rng)
        with pytest.warns(DeprecationWarning):
            deployed = deploy_model(model)
        assert isinstance(deployed, DeployedModel)
        program = repro.compile(model)
        images = rng.normal(size=(4, 3, 12, 12))
        assert np.allclose(deployed.predict_logits(images, scheme),
                           program.predict_logits(images, scheme), atol=1e-12)
        assert deployed.mzi_count == program.mzi_count

    def test_deploy_linear_model_warns(self, rng):
        from repro.core.deploy import deploy_linear_model

        with pytest.warns(DeprecationWarning):
            deploy_linear_model(ComplexFCNN(8, (6,), 3, decoder="merge", rng=rng))

    def test_lower_model_warns_and_rejects_graph_programs(self, rng):
        from repro.core.lowering import lower_model

        with pytest.warns(DeprecationWarning):
            lower_model(tiny_lenet(rng))
        with pytest.warns(DeprecationWarning):
            with pytest.raises(TypeError, match="repro.compile"):
                lower_model(tiny_resnet(rng))

    def test_deploy_model_rejects_graph_programs(self, rng):
        from repro.core.deploy import deploy_model

        with pytest.warns(DeprecationWarning):
            with pytest.raises(TypeError, match="repro.compile"):
                deploy_model(tiny_resnet(rng))

    def test_set_dense_dimension_limit_warns_but_still_seeds_default(self):
        from repro.photonics import engine

        with pytest.warns(DeprecationWarning):
            previous = engine.set_dense_dimension_limit(33)
        try:
            assert engine.DENSE_DIMENSION_LIMIT == 33
        finally:
            engine._set_default_dense_limit(previous)


class TestLoweringRegistry:
    def test_rules_are_extensible(self, rng):
        from repro.core.graph_ir import ElectronicActivation
        from repro.core.lowering import (
            LoweringContext,
            _LAYER_RULES,
            register_lowering,
        )

        class Doubler:
            """A toy electronic module type with its own lowering rule."""

        @register_lowering(Doubler)
        def _lower_doubler(module, name, ctx):
            ctx.emit(name, ElectronicActivation())

        try:
            ctx = LoweringContext()
            ctx.lower_chain([Doubler()], "custom")
            assert ctx.builder.node_count == 1
            assert isinstance(ctx.builder.ops()[0], ElectronicActivation)
        finally:
            del _LAYER_RULES[Doubler]

    def test_mro_dispatch_covers_subclasses(self, rng):
        from repro.core.lowering import LoweringContext
        from repro.nn.complex import ComplexLinear

        class FancyLinear(ComplexLinear):
            pass

        ctx = LoweringContext()
        ctx.lower_chain([FancyLinear(4, 3, rng=rng)], "custom")
        ctx.finalize()
        assert isinstance(ctx.builder.ops()[0], LinearStage)

    def test_activation_folds_only_for_sole_consumers(self, rng):
        from repro.core.graph_ir import ElectronicActivation
        from repro.core.lowering import LoweringContext, fold_activation_nodes
        from repro.nn.complex import ComplexLinear, CReLU

        # pure chain: the CReLU folds into the linear stage
        ctx = LoweringContext()
        ctx.lower_chain([ComplexLinear(4, 4, rng=rng), CReLU()], "chain")
        nodes, output = fold_activation_nodes(ctx.builder.nodes(), ctx.cursor)
        assert len(nodes) == 1 and output == nodes[0].name
        assert nodes[0].op.activation_after is True

        # fan-out: a skip branch consumes the pre-activation output, so the
        # CReLU must stay its own node and the producer must stay unactivated
        ctx = LoweringContext()
        ctx.lower_module(ComplexLinear(4, 4, rng=rng), "linear")
        entry = ctx.cursor
        ctx.lower_module(CReLU(), "act")
        main = ctx.cursor
        ctx.emit("add", ElectronicAdd(), inputs=(main, entry))
        nodes, _output = fold_activation_nodes(ctx.builder.nodes(), ctx.cursor)
        ops = {node.name: node.op for node in nodes}
        assert isinstance(ops["act"], ElectronicActivation)
        assert ops["linear"].activation_after is False

    def test_graph_program_validates_topology(self):
        from repro.core.graph_ir import GraphNode

        op = ElectronicAdd()
        with pytest.raises(ValueError, match="undefined"):
            GraphProgram(nodes=[GraphNode("a", op, ("missing",))], output="a",
                         readout=lambda s: s, num_classes=1)
        with pytest.raises(ValueError, match="duplicate"):
            GraphProgram(nodes=[GraphNode("a", op, (INPUT,)),
                                GraphNode("a", op, (INPUT,))],
                         output="a", readout=lambda s: s, num_classes=1)
