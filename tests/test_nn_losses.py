"""Tests of loss functions, including the distillation losses of Eqs. (3)/(4)."""

import numpy as np
import pytest
from scipy.special import log_softmax as scipy_log_softmax, softmax as scipy_softmax

from repro.nn.losses import (
    CrossEntropyLoss,
    DistillationLoss,
    KLDivergenceLoss,
    MSELoss,
    cross_entropy,
    kl_divergence,
    mse_loss,
)
from repro.tensor import Tensor, gradcheck


class TestCrossEntropy:
    def test_matches_manual_computation(self, rng):
        logits = rng.normal(size=(6, 4))
        labels = rng.integers(0, 4, size=6)
        expected = -scipy_log_softmax(logits, axis=1)[np.arange(6), labels].mean()
        loss = cross_entropy(Tensor(logits), labels)
        assert float(loss.data) == pytest.approx(expected)

    def test_perfect_prediction_is_near_zero(self):
        logits = np.full((3, 3), -50.0)
        logits[np.arange(3), np.arange(3)] = 50.0
        loss = cross_entropy(Tensor(logits), np.arange(3))
        assert float(loss.data) < 1e-6

    def test_label_smoothing_increases_loss_of_confident_model(self):
        logits = np.full((2, 4), -20.0)
        logits[:, 0] = 20.0
        labels = np.zeros(2, dtype=int)
        plain = float(cross_entropy(Tensor(logits), labels).data)
        smoothed = float(cross_entropy(Tensor(logits), labels, label_smoothing=0.2).data)
        assert smoothed > plain

    def test_gradients(self, rng):
        logits = Tensor(rng.normal(size=(4, 5)), requires_grad=True)
        labels = rng.integers(0, 5, size=4)
        gradcheck(lambda: cross_entropy(logits, labels), [logits])

    def test_batch_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            cross_entropy(Tensor(rng.normal(size=(4, 3))), np.zeros(5, dtype=int))

    def test_module_wrapper(self, rng):
        loss_fn = CrossEntropyLoss(label_smoothing=0.1)
        logits = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        loss = loss_fn(logits, np.array([0, 1, 2]))
        assert loss.size == 1

    def test_invalid_smoothing(self):
        with pytest.raises(ValueError):
            CrossEntropyLoss(label_smoothing=1.5)


class TestMSE:
    def test_value(self, rng):
        prediction = rng.normal(size=(5, 3))
        target = rng.normal(size=(5, 3))
        assert float(mse_loss(Tensor(prediction), target).data) == pytest.approx(
            ((prediction - target) ** 2).mean())

    def test_module(self, rng):
        assert float(MSELoss()(Tensor(np.ones((2, 2))), np.ones((2, 2))).data) == 0.0


class TestKLDivergence:
    def test_zero_when_distributions_match(self, rng):
        logits = rng.normal(size=(4, 6))
        divergence = kl_divergence(Tensor(logits), Tensor(logits.copy()), temperature=2.0)
        assert float(divergence.data) == pytest.approx(0.0, abs=1e-10)

    def test_non_negative(self, rng):
        for _ in range(5):
            student = Tensor(rng.normal(size=(3, 5)))
            teacher = Tensor(rng.normal(size=(3, 5)))
            assert float(kl_divergence(student, teacher).data) >= -1e-12

    def test_matches_manual_kl(self, rng):
        student = rng.normal(size=(2, 4))
        teacher = rng.normal(size=(2, 4))
        temperature = 3.0
        p = scipy_softmax(teacher / temperature, axis=1)
        log_p = scipy_log_softmax(teacher / temperature, axis=1)
        log_q = scipy_log_softmax(student / temperature, axis=1)
        expected = (p * (log_p - log_q)).sum(axis=1).mean() * temperature ** 2
        ours = kl_divergence(Tensor(student), Tensor(teacher), temperature=temperature)
        assert float(ours.data) == pytest.approx(expected)

    def test_gradient_flows_only_to_student(self, rng):
        student = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        teacher = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        kl_divergence(student, teacher).backward()
        assert student.grad is not None
        assert teacher.grad is None

    def test_invalid_temperature(self, rng):
        with pytest.raises(ValueError):
            kl_divergence(Tensor(rng.normal(size=(2, 2))), Tensor(rng.normal(size=(2, 2))),
                          temperature=0.0)

    def test_module_wrapper(self, rng):
        loss_fn = KLDivergenceLoss(temperature=2.0)
        value = loss_fn(Tensor(rng.normal(size=(2, 3))), Tensor(rng.normal(size=(2, 3))))
        assert value.size == 1


class TestDistillationLoss:
    def test_alpha_zero_equals_cross_entropy(self, rng):
        logits = Tensor(rng.normal(size=(4, 5)))
        peer = Tensor(rng.normal(size=(4, 5)))
        labels = rng.integers(0, 5, size=4)
        loss = DistillationLoss(alpha=0.0)(logits, labels, peer)
        assert float(loss.data) == pytest.approx(float(cross_entropy(logits, labels).data))

    def test_no_peer_equals_cross_entropy(self, rng):
        logits = Tensor(rng.normal(size=(4, 5)))
        labels = rng.integers(0, 5, size=4)
        loss = DistillationLoss(alpha=1.0)(logits, labels, None)
        assert float(loss.data) == pytest.approx(float(cross_entropy(logits, labels).data))

    def test_combined_is_ce_plus_alpha_kl(self, rng):
        logits = Tensor(rng.normal(size=(4, 5)))
        peer = Tensor(rng.normal(size=(4, 5)))
        labels = rng.integers(0, 5, size=4)
        alpha, temperature = 0.7, 2.0
        combined = DistillationLoss(alpha=alpha, temperature=temperature)(logits, labels, peer)
        expected = (float(cross_entropy(logits, labels).data)
                    + alpha * float(kl_divergence(logits, peer, temperature=temperature).data))
        assert float(combined.data) == pytest.approx(expected)

    def test_negative_alpha_rejected(self):
        with pytest.raises(ValueError):
            DistillationLoss(alpha=-1.0)
