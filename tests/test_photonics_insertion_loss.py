"""Tests of the optional per-MZI insertion-loss model (extension beyond the paper)."""

import numpy as np
import pytest

from repro.photonics import clements_decompose, random_unitary, reck_decompose


class TestInsertionLoss:
    def test_zero_loss_is_lossless(self, rng):
        mesh = clements_decompose(random_unitary(6, rng))
        vector = rng.normal(size=6) + 1j * rng.normal(size=6)
        assert np.allclose(mesh.apply(vector, insertion_loss_db=0.0), mesh.apply(vector))

    def test_output_power_decreases_with_loss(self, rng):
        mesh = clements_decompose(random_unitary(8, rng))
        vector = rng.normal(size=8) + 1j * rng.normal(size=8)
        input_power = float(np.sum(np.abs(vector) ** 2))
        powers = []
        for loss_db in (0.0, 0.1, 0.5, 1.0):
            output = mesh.apply(vector, insertion_loss_db=loss_db)
            powers.append(float(np.sum(np.abs(output) ** 2)))
        assert powers[0] == pytest.approx(input_power)
        assert powers[0] > powers[1] > powers[2] > powers[3]

    def test_loss_bounded_by_worst_case_depth(self, rng):
        """Total attenuation can never exceed (per-MZI loss) ** (number of MZIs)."""
        mesh = reck_decompose(random_unitary(5, rng))
        vector = np.ones(5, dtype=complex)
        loss_db = 0.2
        output_power = float(np.sum(np.abs(mesh.apply(vector, insertion_loss_db=loss_db)) ** 2))
        input_power = float(np.sum(np.abs(vector) ** 2))
        worst_case = 10.0 ** (-loss_db * mesh.mzi_count / 10.0)
        assert output_power >= input_power * worst_case - 1e-12

    def test_both_mesh_topologies_attenuate(self, rng):
        """Reck and Clements meshes both lose power with lossy MZIs (same MZI count)."""
        unitary = random_unitary(10, rng)
        vector = rng.normal(size=10) + 1j * rng.normal(size=10)
        loss_db = 0.3
        input_power = float(np.sum(np.abs(vector) ** 2))

        for decompose in (reck_decompose, clements_decompose):
            mesh = decompose(unitary)
            output_power = float(np.sum(np.abs(mesh.apply(vector, insertion_loss_db=loss_db)) ** 2))
            assert 0.0 < output_power < input_power

    def test_negative_loss_rejected(self, rng):
        mesh = reck_decompose(random_unitary(3, rng))
        with pytest.raises(ValueError):
            mesh.apply(np.ones(3, dtype=complex), insertion_loss_db=-1.0)
